// Package resource is a must-analysis over acquire/release protocols: a
// value bound from a declared Acquire call, or a latch built from a
// declared latch type, must be discharged on every path out of the
// function — normal returns and explicit panic edges alike. PR 9's
// review found both shapes in the wild: a pooled Builder leaked on one
// branch of the fallback ladder, and a singleflight latch a panic could
// leave unpublished, stranding every waiter parked on it.
//
// Obligations are discharged by:
//
//   - a Release call with the value as receiver or argument;
//   - for ConsumeOnStore specs, storing the value into a composite
//     literal or struct field, or returning it (ownership transferred);
//   - for ConsumeOnCall specs and all latches, passing the value as a
//     call argument (the callee now owes the release/publish);
//   - for latches, closing one of the latch's channel fields or calling
//     a declared Fill function on it;
//   - a deferred function that does any of the above (credited on every
//     exit, panic edges included; local closures invoked by the deferred
//     function are scanned one level deep, covering the
//     defer-publish-on-panic idiom).
//
// When the acquiring call also returns an error bound in the same
// assignment, the obligation is waived on the error path: the branch
// taken when that error is non-nil has no resource to release.
//
// Categories: resource.leak (acquired value not released on some path),
// resource.latch (latch not published on some path), resource.drop
// (acquire result discarded outright).
package resource

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"kdtune/internal/lint"
	"kdtune/internal/lint/cfg"
)

// Rule is the resource rule.
var Rule = lint.Rule{
	Name:  "resource",
	Doc:   "acquired resources and latches must be released/published on every path out, panic edges included",
	Check: check,
}

func check(p *lint.Pass) {
	if !p.InResourceScope() {
		return
	}
	if len(p.Cfg.Resources) == 0 && len(p.Cfg.Latches) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, fn := range cfg.Functions(f) {
			checkFunc(p, fn)
		}
	}
}

// obligation is one live duty: release obj per spec (spec != nil) or
// publish obj per latch (latch != nil).
type obligation struct {
	obj   types.Object
	spec  *lint.ResourceSpec
	latch *lint.LatchSpec
	birth token.Pos
	// errObj, when non-nil, is the error bound by the acquiring
	// assignment; the obligation dies on the branch where it is non-nil.
	errObj types.Object
}

func (o *obligation) key() string {
	return fmt.Sprintf("%d", o.birth)
}

func (o *obligation) name() string {
	if o.spec != nil {
		return o.spec.Name
	}
	return o.latch.Type
}

type state map[string]*obligation

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s state) equal(o state) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

func checkFunc(p *lint.Pass, fn cfg.Func) {
	info := p.Pkg.Info
	g := cfg.New(fn.Body, info)
	covered := deferCovered(p, fn, g)

	// Fixpoint: union join (an obligation live on any incoming path is
	// live), edge-sensitive error-branch kills.
	in := make([]state, len(g.Blocks))
	for i := range in {
		in[i] = state{}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			out := transfer(p, b, in[b.Index].clone(), covered, false)
			for si, succ := range b.Succs {
				merged := in[succ.Index].clone()
				for k, v := range out {
					if killedOnEdge(info, b, si, v) {
						continue
					}
					if _, ok := merged[k]; !ok {
						merged[k] = v
					}
				}
				if !merged.equal(in[succ.Index]) {
					in[succ.Index] = merged
					changed = true
				}
			}
		}
	}

	// One reporting sweep for drop findings (discarded acquire results).
	for _, b := range g.Blocks {
		transfer(p, b, in[b.Index].clone(), covered, true)
	}

	// Obligations alive at an exit leak. Report each once, at its birth.
	reported := map[string]bool{}
	for _, exit := range []*cfg.Block{g.Exit, g.Panic} {
		via := "an early return or fall-through"
		if exit == g.Panic {
			via = "a panic edge"
		}
		for _, o := range in[exit.Index] {
			if reported[o.key()] {
				continue
			}
			reported[o.key()] = true
			if o.latch != nil {
				p.Reportf("resource.latch", o.birth,
					"latch %s bound to %s is not published on every path out (%s escapes it); waiters would strand",
					o.latch.Type, o.obj.Name(), via)
			} else {
				p.Reportf("resource.leak", o.birth,
					"%s bound to %s does not reach a release on every path out (%s escapes it)",
					o.spec.Name, o.obj.Name(), via)
			}
		}
	}
}

// killedOnEdge reports whether o's error-waiver applies to the edge from
// b to its si-th successor: the branch taken when the acquiring call's
// error is non-nil carries no resource.
func killedOnEdge(info *types.Info, b *cfg.Block, si int, o *obligation) bool {
	if o.errObj == nil || b.Cond == nil {
		return false
	}
	be, ok := ast.Unparen(b.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	var other ast.Expr
	if isObj(info, be.X, o.errObj) {
		other = be.Y
	} else if isObj(info, be.Y, o.errObj) {
		other = be.X
	} else {
		return false
	}
	if !isNil(info, other) {
		return false
	}
	switch be.Op {
	case token.NEQ: // err != nil: true edge (si 0) is the error path
		return si == 0
	case token.EQL: // err == nil: false edge (si 1) is the error path
		return si == 1
	}
	return false
}

func isObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isN := info.Uses[id].(*types.Nil)
	return isN
}

// transfer runs one block over the state: births add obligations,
// discharges remove them. With report set it also emits resource.drop
// for discarded acquire results.
func transfer(p *lint.Pass, b *cfg.Block, st state, covered map[types.Object]bool, report bool) state {
	info := p.Pkg.Info
	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *ast.AssignStmt:
			discharge(p, st, n)
			births(p, st, n, covered)
		case *ast.ExprStmt:
			if report {
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					if spec := acquireSpec(p, info, call); spec != nil {
						p.Reportf("resource.drop", call.Pos(),
							"result of %s acquire is discarded; the value can never be released", spec.Name)
					}
				}
			}
			discharge(p, st, n)
		case *ast.DeferStmt:
			// Deferred discharges are handled by deferCovered; the defer
			// statement itself neither births nor discharges here.
		default:
			discharge(p, st, n)
		}
	}
	return st
}

// births adds obligations for acquire-call and latch-literal bindings.
func births(p *lint.Pass, st state, as *ast.AssignStmt, covered map[types.Object]bool) {
	info := p.Pkg.Info

	// Acquire call: resource in result 0, error (if any) in the last.
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			spec := acquireSpec(p, info, call)
			if spec == nil {
				return
			}
			obj := lhsObject(info, as.Lhs[0])
			if obj == nil || covered[obj] {
				return
			}
			var errObj types.Object
			if last := lhsObject(info, as.Lhs[len(as.Lhs)-1]); last != nil && len(as.Lhs) > 1 {
				if named, ok := last.Type().(*types.Named); ok && named.Obj().Name() == "error" {
					errObj = last
				}
			}
			o := &obligation{obj: obj, spec: spec, birth: obj.Pos(), errObj: errObj}
			st[o.key()] = o
			return
		}
	}

	// Latch literal: one obligation per bound composite literal.
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		lt := latchSpec(p, info, rhs)
		if lt == nil {
			continue
		}
		obj := lhsObject(info, as.Lhs[i])
		if obj == nil || covered[obj] {
			continue
		}
		o := &obligation{obj: obj, latch: lt, birth: obj.Pos()}
		st[o.key()] = o
	}
}

// acquireSpec returns the ResourceSpec whose Acquire list names the
// call's callee, or nil.
func acquireSpec(p *lint.Pass, info *types.Info, call *ast.CallExpr) *lint.ResourceSpec {
	key := lint.CalleeKey(lint.Callee(info, call))
	if key == "" {
		return nil
	}
	for i := range p.Cfg.Resources {
		if inList(key, p.Cfg.Resources[i].Acquire) {
			return &p.Cfg.Resources[i]
		}
	}
	return nil
}

// latchSpec returns the LatchSpec matching a composite-literal expression
// (&T{...} or T{...}), or nil.
func latchSpec(p *lint.Pass, info *types.Info, e ast.Expr) *lint.LatchSpec {
	e = ast.Unparen(e)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ast.Unparen(ue.X)
	}
	cl, ok := e.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	n := lint.NamedOf(info.TypeOf(cl))
	if n == nil || n.Obj().Pkg() == nil {
		return nil
	}
	key := n.Obj().Pkg().Path() + "." + n.Obj().Name()
	for i := range p.Cfg.Latches {
		if p.Cfg.Latches[i].Type == key {
			return &p.Cfg.Latches[i]
		}
	}
	return nil
}

// discharge removes obligations the node settles: release calls, consume
// stores/returns/args, latch closes and fills.
func discharge(p *lint.Pass, st state, n ast.Node) {
	if len(st) == 0 {
		return
	}
	info := p.Pkg.Info
	cfg.Shallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			dischargeCall(p, st, m)
			return true
		case *ast.CompositeLit:
			for _, el := range m.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				removeIf(info, st, v, func(o *obligation) bool {
					return o.latch == nil && o.spec.ConsumeOnStore
				})
			}
			return true
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				removeIf(info, st, r, func(o *obligation) bool {
					return o.latch != nil || o.spec.ConsumeOnStore
				})
			}
			return true
		case *ast.AssignStmt:
			// A store into a field or element transfers ownership for
			// ConsumeOnStore specs (e.g. srv.tree = t). Plain local
			// rebinding does not.
			for i, lhs := range m.Lhs {
				if i >= len(m.Rhs) {
					break
				}
				switch ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					removeIf(info, st, m.Rhs[i], func(o *obligation) bool {
						return o.latch == nil && o.spec.ConsumeOnStore
					})
				}
			}
			return true
		}
		return true
	})
}

// dischargeCall settles obligations a single call can: a declared release
// (receiver or argument), a latch close/fill, or an ownership-transferring
// argument pass.
func dischargeCall(p *lint.Pass, st state, call *ast.CallExpr) {
	info := p.Pkg.Info
	callee := lint.Callee(info, call)
	key := lint.CalleeKey(callee)

	// close(latch.done)
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
				removeIf(info, st, sel.X, func(o *obligation) bool { return o.latch != nil })
			}
		}
		return
	}

	isRelease := func(o *obligation) bool {
		if o.latch != nil {
			return inList(key, o.latch.Fill)
		}
		return inList(key, o.spec.Release)
	}

	// Receiver: b.Release().
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		removeIf(info, st, sel.X, isRelease)
	}
	for _, a := range call.Args {
		removeIf(info, st, a, func(o *obligation) bool {
			if isRelease(o) {
				return true
			}
			// Ownership transfer: latches always, resources per spec.
			return o.latch != nil || o.spec.ConsumeOnCall
		})
	}
}

// removeIf drops every obligation whose object is the expression's base
// identifier and for which keep returns true.
func removeIf(info *types.Info, st state, e ast.Expr, match func(*obligation) bool) {
	obj := baseObject(info, e)
	if obj == nil {
		return
	}
	for k, o := range st {
		if o.obj == obj && match(o) {
			delete(st, k)
		}
	}
}

// baseObject resolves the identifier behind e, looking through parens and
// a single address-of.
func baseObject(info *types.Info, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ast.Unparen(ue.X)
	}
	if id, ok := e.(*ast.Ident); ok {
		return info.Uses[id]
	}
	return nil
}

func lhsObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// deferCovered collects the objects whose obligations a deferred function
// settles. The deferred callee's body is scanned directly; calls from it
// to local closures (publish := func(...){...}) are followed one level,
// which covers the defer-publish-on-panic idiom.
func deferCovered(p *lint.Pass, fn cfg.Func, g *cfg.Graph) map[types.Object]bool {
	info := p.Pkg.Info
	covered := map[types.Object]bool{}
	if len(g.Defers) == 0 {
		return covered
	}

	// Local closures by object, for one-level resolution.
	closures := map[types.Object]*ast.FuncLit{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
				if obj := lhsObject(info, as.Lhs[i]); obj != nil {
					closures[obj] = lit
				}
			}
		}
		return true
	})

	// scan marks the discharging operations inside body.
	var scan func(n ast.Node, depth int)
	scan = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			// close(x.done)
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "close" && len(call.Args) == 1 {
					if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
						if obj := baseObject(info, sel.X); obj != nil {
							covered[obj] = true
						}
					}
					return true
				}
				// A call to a local closure: follow one level.
				if lit := closures[info.Uses[id]]; lit != nil && depth == 0 {
					scan(lit.Body, depth+1)
					return true
				}
			}
			key := lint.CalleeKey(lint.Callee(info, call))
			if key == "" {
				return true
			}
			releases := releaseKeys(p)
			if !releases[key] {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if obj := baseObject(info, sel.X); obj != nil {
					covered[obj] = true
				}
			}
			for _, a := range call.Args {
				if obj := baseObject(info, a); obj != nil {
					covered[obj] = true
				}
			}
			return true
		})
	}

	for _, d := range g.Defers {
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			scan(lit.Body, 0)
			continue
		}
		// defer obj.Release() / defer pool.Put(b): the call itself is the
		// discharging operation.
		scan(d.Call, 0)
		if id, ok := ast.Unparen(d.Call.Fun).(*ast.Ident); ok {
			if lit := closures[info.Uses[id]]; lit != nil {
				scan(lit.Body, 0)
			}
		}
	}
	return covered
}

// releaseKeys is the union of every Release and Fill callee key.
func releaseKeys(p *lint.Pass) map[string]bool {
	out := map[string]bool{}
	for i := range p.Cfg.Resources {
		for _, k := range p.Cfg.Resources[i].Release {
			out[k] = true
		}
	}
	for i := range p.Cfg.Latches {
		for _, k := range p.Cfg.Latches[i].Fill {
			out[k] = true
		}
	}
	return out
}

func inList(s string, list []string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
