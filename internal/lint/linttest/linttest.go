// Package linttest runs kdlint rules against fixture packages and checks
// the findings against expectations written in the fixtures themselves.
//
// A fixture line that should trigger a finding carries a trailing comment:
//
//	rand.Intn(10) // want `math/rand`
//	for k := range m { // want "map iteration" "second finding"
//
// Each quoted or backquoted string is a regular expression that must match
// the rendered finding ("message [rule]") reported on that line, one
// expectation per finding. Findings without a matching expectation and
// expectations without a matching finding both fail the test. Fixtures
// import the real module packages (kdtune/internal/parallel, ...), so the
// type-based matching inside every rule is exercised end to end.
//
// A finding on a line that cannot carry a trailing comment — a kdlint
// pragma line, whose text runs to end of line — is expected from the line
// below with "// want-above":
//
//	//kdlint:nocancel
//	// want-above `gives no reason`
package linttest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"kdtune/internal/lint"
)

// wantToken extracts the "..."- and `...`-delimited expectation strings
// from a want comment.
var wantToken = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	source  string
	matched bool
}

// Run loads the package matched by pattern, applies rules under cfg, and
// compares the findings with the fixture's want comments.
func Run(t *testing.T, pattern string, cfg *lint.Config, rules []lint.Rule) {
	t.Helper()
	pkgs, err := lint.Load("", []string{pattern}, cfg.IncludeTests)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("pattern %s matched no packages", pattern)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			wants = append(wants, collectWants(t, pkg, f)...)
		}
	}

	diags := lint.Run(pkgs, cfg, rules)
	for _, d := range diags {
		rendered := fmt.Sprintf("%s [%s]", d.Message, d.Rule)
		if w := matchWant(wants, d.Pos.Filename, d.Pos.Line, rendered); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected finding at %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %s, got none", w.file, w.line, w.source)
		}
	}
}

// matchWant finds the first unmatched expectation on (file, line) whose
// regexp matches the rendered finding.
func matchWant(wants []*expectation, file string, line int, rendered string) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(rendered) {
			return w
		}
	}
	return nil
}

// collectWants parses the want comments of one file.
func collectWants(t *testing.T, pkg *lint.Package, f *ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			above := false
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				if text, ok = strings.CutPrefix(c.Text, "// want-above "); !ok {
					continue
				}
				above = true
			}
			pos := pkg.Fset.Position(c.Pos())
			if above {
				pos.Line--
			}
			tokens := wantToken.FindAllString(text, -1)
			if len(tokens) == 0 {
				t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
			}
			for _, tok := range tokens {
				pat := strings.Trim(tok, "`")
				if tok[0] == '"' {
					var err error
					if pat, err = strconv.Unquote(tok); err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, tok, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, tok, err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, source: tok})
			}
		}
	}
	return wants
}
