// Package determinism checks the packages whose outputs must be
// bit-identical across runs and worker counts (Config.DeterminismPackages):
// the builders promise worker-count-independent trees, and the autotuner's
// cost model assumes repeated builds of the same scene measure the same
// work. Four categories:
//
//	determinism.time      — time.Now/Since/Until: wall-clock values must
//	                        not influence build decisions
//	determinism.rand      — math/rand global-source functions: unseeded
//	                        randomness; use rand.New(rand.NewSource(seed))
//	determinism.maprange  — ranging over a map: iteration order is
//	                        nondeterministic; sort keys, or suppress when
//	                        the loop provably commutes
//	determinism.goroutine — raw go statements outside the allowlisted
//	                        substrate: ad-hoc goroutines have no ordering
//	                        discipline; use internal/parallel primitives
package determinism

import (
	"go/ast"
	"go/types"

	"kdtune/internal/lint"
)

// Rule returns the determinism rule.
func Rule() lint.Rule {
	return lint.Rule{
		Name:  "determinism",
		Doc:   "forbid wall-clock, unseeded randomness, map-order dependence, and raw goroutines in determinism-scoped packages",
		Check: check,
	}
}

// randConstructors are the math/rand package-level functions that build an
// explicitly seeded generator rather than drawing from the global source.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func check(p *lint.Pass) {
	if !p.InDeterminismScope() {
		return
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := lint.Callee(info, n)
				if fn == nil {
					return true
				}
				name := fn.Name()
				switch lint.FuncPkgPath(fn) {
				case "time":
					if lint.RecvTypeName(fn) == "" && (name == "Now" || name == "Since" || name == "Until") {
						p.Reportf("determinism.time", n.Pos(),
							"time.%s in a determinism-scoped package: wall-clock values must not influence build decisions", name)
					}
				case "math/rand", "math/rand/v2":
					if lint.RecvTypeName(fn) == "" && !randConstructors[name] {
						p.Reportf("determinism.rand", n.Pos(),
							"math/rand.%s draws from the global source: seed explicitly with rand.New(rand.NewSource(seed)) so runs replay", name)
					}
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						p.Reportf("determinism.maprange", n.Pos(),
							"map iteration order is nondeterministic: collect and sort the keys first, or suppress when the loop body provably commutes")
					}
				}
			case *ast.GoStmt:
				if !p.GoroutinesAllowed() {
					p.Reportf("determinism.goroutine", n.Pos(),
						"raw go statement outside the parallel substrate: ad-hoc goroutines have no deterministic join or merge order; use internal/parallel primitives")
				}
			}
			return true
		})
	}
}
