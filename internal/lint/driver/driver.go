// Package driver is kdlint's command-line entry point, factored out of
// cmd/kdlint so its behavior — flag parsing, rule selection, output
// formats, and above all the exit-code contract — is testable in-process.
//
// Exit codes are part of the CI interface and deliberately split:
//
//	0  clean
//	1  findings (a dirty tree)
//	2  load, usage, or internal error (a broken analyzer)
//
// CI treats 1 as "fix the code" and 2 as "fix the linter"; conflating
// them would let an analyzer crash masquerade as a clean-up task.
package driver

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kdtune/internal/lint"
	"kdtune/internal/lint/arena"
	"kdtune/internal/lint/atomics"
	"kdtune/internal/lint/ctxflow"
	"kdtune/internal/lint/determinism"
	"kdtune/internal/lint/escapes"
	"kdtune/internal/lint/guard"
	"kdtune/internal/lint/hotpath"
	"kdtune/internal/lint/locks"
	"kdtune/internal/lint/resource"
	"kdtune/internal/lint/tunable"
)

// defaultHot are the packages whose allocations the cost model treats as
// per-ray or per-node costs; the escape gate holds their heap behavior to
// the committed baseline. internal/serve joined the list when the serving
// layer's logring, metrics, and admission fast paths became part of the
// steady-state request loop.
var defaultHot = []string{
	"kdtune/internal/kdtree",
	"kdtune/internal/sah",
	"kdtune/internal/render",
	"kdtune/internal/vecmath",
	"kdtune/internal/serve",
}

// Rules returns every rule in the order the driver runs them.
func Rules() []lint.Rule {
	return []lint.Rule{
		determinism.Rule(),
		guard.Rule(),
		arena.Rule(),
		hotpath.Rule(),
		tunable.Rule(),
		ctxflow.Rule,
		atomics.Rule,
		locks.Rule,
		resource.Rule,
	}
}

// Main runs kdlint with argv (flags plus package patterns, without the
// program name), writing findings to stdout and errors to stderr, and
// returns the process exit code.
func Main(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	tests := fs.Bool("tests", false, "also lint _test.go files (loads test variants)")
	ruleList := fs.String("rules", "", "comma-separated rule families to run (default: all)")
	escapesMode := fs.Bool("escapes", false, "run the escape-analysis gate instead of the AST rules")
	baseline := fs.String("baseline", "lint/escapes.baseline", "escape baseline file (with -escapes)")
	update := fs.Bool("update", false, "rewrite the baseline from the current escape set (with -escapes)")
	hot := fs.String("hot", strings.Join(defaultHot, ","), "comma-separated hot packages to gate (with -escapes)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *escapesMode {
		return runEscapes(stdout, stderr, *baseline, *update, strings.Split(*hot, ","))
	}

	rules := Rules()
	if *ruleList != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(*ruleList, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var selected []lint.Rule
		for _, r := range rules {
			if want[r.Name] {
				selected = append(selected, r)
				delete(want, r.Name)
			}
		}
		if len(want) > 0 {
			var unknown []string
			for r := range want {
				unknown = append(unknown, r)
			}
			fmt.Fprintf(stderr, "kdlint: unknown rule(s) %s\n", strings.Join(unknown, ", "))
			return 2
		}
		rules = selected
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cfg := lint.DefaultConfig()
	cfg.IncludeTests = *tests
	pkgs, err := lint.Load("", patterns, cfg.IncludeTests)
	if err != nil {
		fmt.Fprintln(stderr, "kdlint:", err)
		return 2
	}
	diags := lint.Run(pkgs, cfg, rules)
	if cwd, err := os.Getwd(); err == nil {
		lint.Relativize(diags, cwd)
	}
	switch {
	case *sarifOut:
		docs := map[string]string{}
		for _, r := range Rules() {
			docs[r.Name] = r.Doc
		}
		if err := lint.WriteSARIF(stdout, diags, docs); err != nil {
			fmt.Fprintln(stderr, "kdlint:", err)
			return 2
		}
	case *jsonOut:
		if err := lint.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "kdlint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func runEscapes(stdout, stderr io.Writer, baseline string, update bool, hot []string) int {
	esc, err := escapes.Collect(escapes.Options{Packages: hot})
	if err != nil {
		fmt.Fprintln(stderr, "kdlint:", err)
		return 2
	}
	if update {
		if err := escapes.WriteBaseline(baseline, esc); err != nil {
			fmt.Fprintln(stderr, "kdlint:", err)
			return 2
		}
		fmt.Fprintf(stdout, "kdlint: baseline %s updated: %d escapes across %s\n", baseline, len(esc), strings.Join(hot, ", "))
		return 0
	}
	base, err := escapes.ReadBaseline(baseline)
	if err != nil {
		fmt.Fprintln(stderr, "kdlint:", err)
		return 2
	}
	news, stale := escapes.Diff(esc, base)
	for _, e := range news {
		fmt.Fprintf(stdout, "%s: new heap escape: %s (in %s, %s)\n", e.Pos, e.Msg, e.Func, e.Pkg)
	}
	for _, k := range stale {
		fmt.Fprintf(stdout, "kdlint: note: baseline entry no longer observed: %s (fold in with -escapes -update)\n", k)
	}
	if len(news) > 0 {
		fmt.Fprintf(stdout, "kdlint: %d new escape(s) not in %s; fix them or regenerate the baseline with -escapes -update\n", len(news), baseline)
		return 1
	}
	fmt.Fprintf(stdout, "kdlint: escape gate clean: %d baselined escapes, %d observed\n", len(base), len(esc))
	return 0
}
