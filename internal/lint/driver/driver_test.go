package driver_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"kdtune/internal/lint/driver"
)

const fixtureRoot = "kdtune/internal/lint/testdata/src/"

// run invokes the driver in-process and returns (exit code, stdout, stderr).
func run(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := driver.Main(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestExitCleanIsZero: a fixture outside the rule's scope produces no
// findings, and a clean run exits 0 with empty output.
func TestExitCleanIsZero(t *testing.T) {
	code, out, errb := run("-rules", "determinism", fixtureRoot+"detfx")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, errb)
	}
	if out != "" {
		t.Errorf("clean run wrote to stdout: %q", out)
	}
}

// TestExitFindingsIsOne: the hotpath fixture has findings under the
// default config, so the run reports them and exits 1 — not 2, which is
// reserved for a broken analyzer.
func TestExitFindingsIsOne(t *testing.T) {
	code, out, _ := run("-rules", "hotpath", fixtureRoot+"hotfx")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if out == "" {
		t.Error("findings run wrote nothing to stdout")
	}
}

// TestExitLoadErrorIsTwo: an unloadable pattern is an analyzer-side
// failure and must not masquerade as findings (1) or a clean tree (0).
func TestExitLoadErrorIsTwo(t *testing.T) {
	code, _, errb := run("./no-such-package")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if errb == "" {
		t.Error("load error produced no stderr diagnostics")
	}
}

// TestExitUnknownRuleIsTwo: a typo in -rules is a usage error, not a
// clean run.
func TestExitUnknownRuleIsTwo(t *testing.T) {
	code, _, errb := run("-rules", "nosuchrule", fixtureRoot+"detfx")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb, "nosuchrule") {
		t.Errorf("stderr does not name the unknown rule: %q", errb)
	}
}

// TestSARIFOutput: -sarif emits a parseable SARIF 2.1.0 log carrying the
// findings, and the exit code still reflects them.
func TestSARIFOutput(t *testing.T) {
	code, out, errb := run("-sarif", "-rules", "hotpath", fixtureRoot+"hotfx")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name string `json:"name"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "kdlint" {
		t.Fatalf("malformed runs: %+v", log.Runs)
	}
	if len(log.Runs[0].Results) == 0 {
		t.Error("SARIF log carries no results despite exit 1")
	}
	for _, r := range log.Runs[0].Results {
		if !strings.HasPrefix(r.RuleID, "hotpath.") {
			t.Errorf("unexpected ruleId %q", r.RuleID)
		}
	}
}

// TestRulesListsDataflowFamilies pins that the driver registers the
// CFG/dataflow rules; dropping one from Rules() would silently disable
// its fixtures' coverage in CI.
func TestRulesListsDataflowFamilies(t *testing.T) {
	have := map[string]bool{}
	for _, r := range driver.Rules() {
		have[r.Name] = true
	}
	for _, name := range []string{"ctxflow", "atomics", "locks", "resource"} {
		if !have[name] {
			t.Errorf("driver.Rules() is missing the %s rule", name)
		}
	}
}
