// Package tunable flags hard-coded scheduling constants at the call sites
// PR 8 converted into registry tunables:
//
//	tunable.grain — an int literal (>= 2) in the grain position of a
//	                parallel dispatch (ForChunks, ForGrain, ChunkCount and
//	                their Cancel variants) or of the chunked binned SAH
//	                search. Grains are online-tuned through the tunable
//	                registry (kdtree.Config.ScatterGrain / BinGrain); an
//	                inline literal pins the schedule behind the tuner's
//	                back. The literals 0 and 1 stay legal — 0 selects the
//	                named default, 1 is the neutral "no grain floor" used
//	                by across-node dispatches that want one chunk per
//	                worker regardless of n.
//	tunable.bins  — an int literal (>= 2) in the bins position of
//	                sah.FindBestSplitBinned*. The bin count B is a
//	                registered tunable (kdtree.Config.Bins) that changes
//	                the resulting tree; a literal forks the search space
//	                away from the tuned vector.
//
// Only expressions built entirely from literals are flagged (4096, 1<<12);
// a named constant such as sah.DefaultBinGrain is the sanctioned spelling
// of a default, because it is the single value the registry registers.
//
// Escape with //kdlint:allow tunable.grain <reason> (or tunable.bins) when
// a site genuinely must not follow the tuned vector — e.g. a microbenchmark
// pinning one grain on purpose.
package tunable

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"kdtune/internal/lint"
)

// Rule returns the tunable rule.
func Rule() lint.Rule {
	return lint.Rule{
		Name:  "tunable",
		Doc:   "forbid hard-coded grain/bin literals at parallel dispatch and SAH split-search call sites",
		Check: check,
	}
}

// parallelGrainPos maps each grain-taking dispatch function of the parallel
// package to the argument index of its grain.
var parallelGrainPos = map[string]int{
	"ChunkCount":      2,
	"ForChunks":       2,
	"ForGrain":        2,
	"ForChunksCancel": 3,
	"ForGrainCancel":  3,
}

// sahArgPos maps the binned split-search entry points to the argument
// indices of their bins and grain parameters (-1 when absent).
var sahArgPos = map[string]struct{ bins, grain int }{
	"FindBestSplitBinned":             {bins: 3, grain: -1},
	"FindBestSplitBinnedChunks":       {bins: 3, grain: 5},
	"FindBestSplitBinnedChunksCancel": {bins: 4, grain: 6},
}

func check(p *lint.Pass) {
	if !p.InTunableScope() || p.IsParallelPackage() {
		return
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.Callee(info, call)
			if fn == nil || lint.RecvTypeName(fn) != "" {
				return true
			}
			pkg, name := lint.FuncPkgPath(fn), fn.Name()
			switch pkg {
			case p.Cfg.ParallelPackage:
				if pos, ok := parallelGrainPos[name]; ok {
					checkArg(p, call, pos, "grain", "parallel."+name,
						"grains are registry tunables (Config.ScatterGrain, Config.BinGrain): thread the tuned value, pass 1 for no grain floor")
				}
			case p.Cfg.SAHPackage:
				if pos, ok := sahArgPos[name]; ok {
					checkArg(p, call, pos.bins, "bins", "sah."+name,
						"the SAH bin count B is a registry tunable (Config.Bins) that shapes the tree: thread the tuned value")
					checkArg(p, call, pos.grain, "grain", "sah."+name,
						"the binned-search grain is a registry tunable (Config.BinGrain): thread the tuned value, pass 0 for the named default")
				}
			}
			return true
		})
	}
}

// checkArg reports the argument at index pos of call when it is a literal
// integer >= 2 — a scheduling constant hard-coded past the registry.
func checkArg(p *lint.Pass, call *ast.CallExpr, pos int, kind, callee, fix string) {
	if pos < 0 || pos >= len(call.Args) {
		return
	}
	arg := call.Args[pos]
	v, ok := literalInt(p.Pkg.Info, arg)
	if !ok || v < 2 {
		return
	}
	p.Reportf("tunable."+kind, arg.Pos(),
		"hard-coded %s %d at %s: %s, or suppress with //kdlint:allow tunable.%s <reason>",
		kind, v, callee, fix, kind)
}

// literalInt reports whether e is a compile-time integer built only from
// literals — no named constant, variable, or call — and returns its value.
// sah.DefaultBinGrain is a constant too, but it arrives through an
// identifier and so stays legal.
func literalInt(info *types.Info, e ast.Expr) (int64, bool) {
	if !literalOnly(e) {
		return 0, false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// literalOnly reports whether e consists solely of integer literals and
// operators over them.
func literalOnly(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.BasicLit:
		return x.Kind == token.INT
	case *ast.ParenExpr:
		return literalOnly(x.X)
	case *ast.UnaryExpr:
		return literalOnly(x.X)
	case *ast.BinaryExpr:
		return literalOnly(x.X) && literalOnly(x.Y)
	}
	return false
}
