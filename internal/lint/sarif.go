package lint

import (
	"encoding/json"
	"io"
	"sort"
)

// SARIF 2.1.0 output, the minimal subset GitHub code scanning ingests:
// one run, one result per diagnostic, rule metadata derived from the
// categories present in the findings. -json remains the stable machine
// format; SARIF exists so CI can annotate PR diffs inline.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders diags as a SARIF 2.1.0 log. ruleDocs maps rule
// family names to their one-line descriptions; categories not covered
// fall back to their own name.
func WriteSARIF(w io.Writer, diags []Diagnostic, ruleDocs map[string]string) error {
	cats := map[string]bool{}
	for _, d := range diags {
		cats[d.Rule] = true
	}
	var ids []string
	for id := range cats {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var rules []sarifRule
	for _, id := range ids {
		doc := ruleDocs[familyOf(id)]
		if doc == "" {
			doc = id
		}
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifText{Text: doc}})
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.Pos.Filename},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	if rules == nil {
		rules = []sarifRule{}
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "kdlint",
				InformationURI: "https://github.com/kdtune/kdtune",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(log)
}

// familyOf strips the category suffix: "guard.cancel" -> "guard".
func familyOf(rule string) string {
	for i := 0; i < len(rule); i++ {
		if rule[i] == '.' {
			return rule[:i]
		}
	}
	return rule
}
