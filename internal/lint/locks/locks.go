// Package locks runs a may-held mutex analysis over each function's CFG
// and enforces two invariants inside Config.LocksPackages:
//
//   - locks.blocked: no potentially blocking operation — raw channel
//     send/receive, a select without a default, time.Sleep, a
//     WaitGroup/Pool wait, or any Config.BlockingFuncs call — while a
//     sync.Mutex or RWMutex may be held. Parking a goroutine that holds a
//     lock starves every other waiter of that lock for the duration of
//     the park; with a latch in the cycle it is a deadlock (the exact
//     e.mu shape fixed in PR 9's review).
//
//   - locks.order: every observed nesting of lock classes must be
//     declared in Config.LockOrder as "outer<inner". Nesting that is
//     reversed or simply undeclared is flagged, so the sanctioned order
//     is a reviewed table in one place rather than folklore.
//
// A lock class is "<pkgpath>.<Type>.<field>" — the field holding the
// mutex. Held-ness is tracked per instance (the expression the mutex was
// locked through), so two instances of one class are distinct; order
// checks compare classes. Calls listed in Config.LockMethods acquire (and
// release) their class internally: they participate in order checks
// against the held set without extending it. A deferred Unlock does NOT
// release for this analysis — the lock is held to function exit, which is
// precisely the window locks.blocked polices.
package locks

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"kdtune/internal/lint"
	"kdtune/internal/lint/cfg"
)

// Rule is the locks rule.
var Rule = lint.Rule{
	Name:  "locks",
	Doc:   "no blocking operation while a mutex is held; lock nesting must follow the declared order",
	Check: check,
}

func check(p *lint.Pass) {
	if !p.InLocksScope() {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, fn := range cfg.Functions(f) {
			checkFunc(p, fn)
		}
	}
}

// heldLock is one possibly-held mutex instance.
type heldLock struct {
	class string // lock class, "" when the instance has no named field
	pos   token.Pos
}

// state maps instance keys to held info.
type state map[string]heldLock

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s state) equal(o state) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

func checkFunc(p *lint.Pass, fn cfg.Func) {
	g := cfg.New(fn.Body, p.Pkg.Info)
	comms := commStmts(fn.Body)

	// Fixpoint over block-entry states (may analysis: union join).
	in := make([]state, len(g.Blocks))
	for i := range in {
		in[i] = state{}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			out := transfer(p, fn, b, in[b.Index].clone(), comms, nil)
			for _, succ := range b.Succs {
				merged := in[succ.Index].clone()
				for k, v := range out {
					if _, ok := merged[k]; !ok {
						merged[k] = v
					}
				}
				if !merged.equal(in[succ.Index]) {
					in[succ.Index] = merged
					changed = true
				}
			}
		}
	}

	// Reporting pass with the converged entry states. Findings are
	// deduped: a node reachable with the same lock held along several
	// paths is one finding, not one per path.
	seen := map[string]bool{}
	report := func(rule string, pos token.Pos, msg string) {
		key := fmt.Sprintf("%s|%d|%s", rule, pos, msg)
		if !seen[key] {
			seen[key] = true
			p.Reportf(rule, pos, "%s", msg)
		}
	}
	for _, b := range g.Blocks {
		transfer(p, fn, b, in[b.Index].clone(), comms, report)
	}
}

// commStmts collects the comm statements of every select, whose channel
// operations are mediated by the select rather than raw.
func commStmts(body *ast.BlockStmt) map[ast.Node]bool {
	out := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, cl := range sel.Body.List {
				if comm := cl.(*ast.CommClause).Comm; comm != nil {
					out[comm] = true
				}
			}
		}
		return true
	})
	return out
}

// transfer runs one block's nodes over the state. With report non-nil it
// also emits findings; the same function drives both the fixpoint and the
// reporting pass so they cannot diverge.
func transfer(p *lint.Pass, fn cfg.Func, b *cfg.Block, st state, comms map[ast.Node]bool, report func(rule string, pos token.Pos, msg string)) state {
	info := p.Pkg.Info
	emit := func(rule string, pos token.Pos, format string, args ...any) {
		if report != nil {
			report(rule, pos, fmt.Sprintf(format, args...))
		}
	}
	blockedOn := func(pos token.Pos, what string) {
		for _, h := range st {
			name := h.class
			if name == "" {
				name = "a mutex"
			}
			lp := p.Pkg.Fset.Position(h.pos)
			emit("locks.blocked", pos, "%s while %s is held (locked at %s:%d)",
				what, name, filepath.Base(lp.Filename), lp.Line)
		}
	}
	orderCheck := func(pos token.Pos, class string) {
		if class == "" {
			return
		}
		for _, h := range st {
			outer := h.class
			if outer == "" || outer == class {
				if outer == class && !declared(p.Cfg.LockOrder, outer, class) {
					emit("locks.order", pos,
						"acquires %s while another instance of the same class is held; self-nesting must be declared in LockOrder", class)
				}
				continue
			}
			switch {
			case declared(p.Cfg.LockOrder, outer, class):
				// sanctioned
			case declared(p.Cfg.LockOrder, class, outer):
				emit("locks.order", pos,
					"acquires %s while %s is held, reversing the declared order %q",
					class, outer, class+"<"+outer)
			default:
				emit("locks.order", pos,
					"undeclared lock nesting: %s acquired while %s is held; declare %q in LockOrder",
					class, outer, outer+"<"+class)
			}
		}
	}

	for _, n := range b.Nodes {
		if comms[n] {
			continue
		}
		if _, ok := n.(*ast.DeferStmt); ok {
			// Deferred calls run at exit; a deferred Unlock keeps the lock
			// held through the rest of the body for this analysis.
			continue
		}
		if sel, ok := n.(*ast.SelectStmt); ok {
			if !hasDefault(sel) && len(st) > 0 {
				blockedOn(sel.Pos(), "select")
			}
			continue
		}
		cfg.Shallow(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt:
				return false
			case *ast.SendStmt:
				if len(st) > 0 {
					blockedOn(m.Pos(), "channel send")
				}
				return true
			case *ast.UnaryExpr:
				if m.Op == token.ARROW && len(st) > 0 {
					blockedOn(m.Pos(), "channel receive")
				}
				return true
			case *ast.CallExpr:
				callee := lint.Callee(info, m)
				key := lint.CalleeKey(callee)
				switch key {
				case "sync.Mutex.Lock", "sync.RWMutex.Lock", "sync.RWMutex.RLock":
					inst, class := mutexOperand(info, m)
					orderCheck(m.Pos(), class)
					if inst != "" {
						st[inst] = heldLock{class: class, pos: m.Pos()}
					}
					return true
				case "sync.Mutex.Unlock", "sync.RWMutex.Unlock", "sync.RWMutex.RUnlock":
					inst, _ := mutexOperand(info, m)
					delete(st, inst)
					return true
				case "time.Sleep":
					if len(st) > 0 {
						blockedOn(m.Pos(), "time.Sleep")
					}
					return true
				case "sync.WaitGroup.Wait":
					if len(st) > 0 {
						blockedOn(m.Pos(), "WaitGroup.Wait")
					}
					return true
				}
				if class, ok := p.Cfg.LockMethods[key]; ok {
					orderCheck(m.Pos(), class)
				}
				if len(st) > 0 && inList(key, p.Cfg.BlockingFuncs) {
					blockedOn(m.Pos(), key)
				}
				return true
			}
			return true
		})
	}
	return st
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cl.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// mutexOperand resolves the instance key and lock class of a Lock/Unlock
// receiver: for e.mu.Lock(), the instance is "e.mu" disambiguated by e's
// object, and the class is "<pkg>.<TypeOf e>.mu".
func mutexOperand(info *types.Info, call *ast.CallExpr) (instance, class string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	mutex := ast.Unparen(sel.X) // the mutex-valued expression
	instance = exprKey(info, mutex)
	if fsel, ok := mutex.(*ast.SelectorExpr); ok {
		if base := lint.NamedOf(info.TypeOf(fsel.X)); base != nil && base.Obj().Pkg() != nil {
			class = base.Obj().Pkg().Path() + "." + base.Obj().Name() + "." + fsel.Sel.Name
		}
	}
	return instance, class
}

// exprKey renders a stable key for an ident/selector chain, anchored at
// the base identifier's object so shadowed names stay distinct. Other
// shapes key on their position (unique, so they never alias).
func exprKey(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return fmt.Sprintf("%s@%d", e.Name, obj.Pos())
		}
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(info, e.X) + "." + e.Sel.Name
	}
	return fmt.Sprintf("expr@%d", e.Pos())
}

// declared reports whether LockOrder sanctions acquiring inner while
// outer is held.
func declared(order []string, outer, inner string) bool {
	return inListString(order, outer+"<"+inner)
}

func inListString(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func inList(s string, list []string) bool {
	if s == "" {
		return false
	}
	return inListString(list, s)
}
