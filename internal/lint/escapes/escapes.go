// Package escapes implements the kdlint -escapes gate: it runs the
// compiler's escape analysis (go build -gcflags=-m) over the hot packages,
// extracts every heap-escaping allocation, and diffs the set against a
// committed baseline (lint/escapes.baseline). A new escape fails the gate —
// the traversal and build kernels' performance story depends on these
// allocations not creeping in — while a disappeared escape is only a
// suggestion to regenerate the baseline, so improving the code never breaks
// CI.
//
// Escapes are keyed "pkg :: func :: message" rather than by file:line, so
// unrelated edits that shift lines do not churn the baseline; only moving
// an allocation between functions or changing what escapes does.
package escapes

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Options configures one gate run.
type Options struct {
	// Dir is the working directory for the go tool ("" for the process's).
	Dir string
	// Packages are the hot packages whose escapes are gated.
	Packages []string
	// Overlay is an optional go build -overlay JSON file; tests use it to
	// prove the gate fails on an injected escape without touching the tree.
	Overlay string
}

// Escape is one heap-escaping allocation reported by the compiler.
type Escape struct {
	Pkg  string // import path of the containing package
	Func string // enclosing function or method name ("?" when unresolvable)
	Msg  string // compiler message, e.g. "moved to heap: b"
	Pos  string // file:line:col, for display only (not part of the key)
}

// Key is the line-drift-robust identity an escape is baselined under.
func (e Escape) Key() string {
	return e.Pkg + " :: " + e.Func + " :: " + e.Msg
}

// diagLine matches a compiler diagnostic "file.go:line:col: message".
var diagLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// Collect builds the packages with -gcflags=-m and returns every escape
// diagnostic, sorted by key. Build caching makes repeat runs cheap: the
// compiler replays cached diagnostics instead of recompiling.
func Collect(opts Options) ([]Escape, error) {
	if len(opts.Packages) == 0 {
		return nil, fmt.Errorf("escapes: no packages to gate")
	}
	overlayArgs := []string{}
	if opts.Overlay != "" {
		overlayArgs = append(overlayArgs, "-overlay", opts.Overlay)
	}

	// Resolve each package's files so diagnostics can be attributed to
	// packages and enclosing functions.
	fileToPkg := map[string]string{}
	listArgs := append(append([]string{"list", "-json"}, overlayArgs...), opts.Packages...)
	out, err := runGo(opts.Dir, listArgs)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp struct {
			Dir        string
			ImportPath string
			GoFiles    []string
		}
		if err := dec.Decode(&lp); err != nil {
			break
		}
		for _, f := range lp.GoFiles {
			fileToPkg[filepath.Join(lp.Dir, f)] = lp.ImportPath
		}
	}

	// -gcflags with a bare value applies exactly to the packages named on
	// the command line, which is the gate's scope.
	buildArgs := append(append([]string{"build", "-gcflags=-m"}, overlayArgs...), opts.Packages...)
	cmd := exec.Command("go", buildArgs...)
	cmd.Dir = opts.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("escapes: go build: %v\n%s", err, stderr.String())
	}

	replace := map[string]string{}
	if opts.Overlay != "" {
		if err := readOverlay(opts.Overlay, replace); err != nil {
			return nil, err
		}
	}

	base := opts.Dir
	if base == "" {
		if base, err = os.Getwd(); err != nil {
			return nil, err
		}
	}
	funcs := newFuncIndex(replace)
	var escapes []Escape
	sc := bufio.NewScanner(&stderr)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := diagLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.HasPrefix(msg, "moved to heap:") && !strings.HasSuffix(msg, "escapes to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(base, file)
		}
		pkg, ok := fileToPkg[file]
		if !ok {
			continue // diagnostic from a dependency outside the gate
		}
		line := atoi(m[2])
		escapes = append(escapes, Escape{
			Pkg:  pkg,
			Func: funcs.enclosing(file, line),
			Msg:  msg,
			Pos:  fmt.Sprintf("%s:%s:%s", m[1], m[2], m[3]),
		})
	}
	sort.Slice(escapes, func(i, j int) bool {
		if ki, kj := escapes[i].Key(), escapes[j].Key(); ki != kj {
			return ki < kj
		}
		return escapes[i].Pos < escapes[j].Pos
	})
	return escapes, nil
}

// Diff splits the collected escapes into those missing from the baseline
// (gate failures) and baseline keys no longer observed (stale entries, an
// improvement to fold in with -update).
func Diff(escapes []Escape, baseline map[string]bool) (news []Escape, stale []string) {
	seen := map[string]bool{}
	for _, e := range escapes {
		seen[e.Key()] = true
		if !baseline[e.Key()] {
			news = append(news, e)
		}
	}
	for k := range baseline {
		if !seen[k] {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return news, stale
}

// ReadBaseline loads a baseline file: one key per line, '#' comments and
// blank lines ignored. A missing file is an empty baseline, so the gate
// can bootstrap with -update.
func ReadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]bool{}, nil
	}
	if err != nil {
		return nil, err
	}
	base := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		base[line] = true
	}
	return base, nil
}

// WriteBaseline writes the sorted, deduplicated keys of escapes to path.
func WriteBaseline(path string, escapes []Escape) error {
	keys := make([]string, 0, len(escapes))
	seen := map[string]bool{}
	for _, e := range escapes {
		if !seen[e.Key()] {
			seen[e.Key()] = true
			keys = append(keys, e.Key())
		}
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteString("# kdlint escape-analysis baseline.\n")
	buf.WriteString("# One entry per heap-escaping allocation in the gated hot packages,\n")
	buf.WriteString("# keyed \"pkg :: func :: compiler message\" (line numbers excluded so\n")
	buf.WriteString("# unrelated edits do not churn this file).\n")
	buf.WriteString("# Regenerate with: go run ./cmd/kdlint -escapes -update\n")
	for _, k := range keys {
		buf.WriteString(k)
		buf.WriteByte('\n')
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// funcIndex lazily parses flagged files to resolve the function enclosing a
// diagnostic line, honoring overlay replacements.
type funcIndex struct {
	replace map[string]string // overlay: original path -> replacement path
	files   map[string][]funcSpan
	fset    *token.FileSet
}

type funcSpan struct {
	name     string
	from, to int // line range, inclusive
}

func newFuncIndex(replace map[string]string) *funcIndex {
	return &funcIndex{replace: replace, files: map[string][]funcSpan{}, fset: token.NewFileSet()}
}

func (fi *funcIndex) enclosing(file string, line int) string {
	spans, ok := fi.files[file]
	if !ok {
		spans = fi.parse(file)
		fi.files[file] = spans
	}
	for _, s := range spans {
		if s.from <= line && line <= s.to {
			return s.name
		}
	}
	return "?"
}

func (fi *funcIndex) parse(file string) []funcSpan {
	src := file
	if r, ok := fi.replace[file]; ok {
		src = r
	}
	f, err := parser.ParseFile(fi.fset, src, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil
	}
	var spans []funcSpan
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		name := fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			name = recvName(fd.Recv.List[0].Type) + "." + name
		}
		spans = append(spans, funcSpan{
			name: name,
			from: fi.fset.Position(fd.Pos()).Line,
			to:   fi.fset.Position(fd.End()).Line,
		})
	}
	return spans
}

// recvName renders a receiver type expression as its base type name.
func recvName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvName(t.X)
	case *ast.IndexExpr:
		return recvName(t.X)
	case *ast.IndexListExpr:
		return recvName(t.X)
	case *ast.Ident:
		return t.Name
	}
	return "?"
}

// readOverlay parses a go build overlay file into replace.
func readOverlay(path string, replace map[string]string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("escapes: reading overlay: %v", err)
	}
	var ov struct {
		Replace map[string]string
	}
	if err := json.Unmarshal(data, &ov); err != nil {
		return fmt.Errorf("escapes: parsing overlay: %v", err)
	}
	for k, v := range ov.Replace {
		replace[k] = v
	}
	return nil
}

func runGo(dir string, args []string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("escapes: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}
