package escapes

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// hotPackages mirrors cmd/kdlint's default gate scope.
var hotPackages = []string{
	"kdtune/internal/kdtree",
	"kdtune/internal/sah",
	"kdtune/internal/render",
	"kdtune/internal/vecmath",
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestGateCleanOnTree pins the committed baseline: the tree as checked in
// must pass its own escape gate, exactly as the CI lint job runs it.
func TestGateCleanOnTree(t *testing.T) {
	root := moduleRoot(t)
	esc, err := Collect(Options{Dir: root, Packages: hotPackages})
	if err != nil {
		t.Fatal(err)
	}
	if len(esc) == 0 {
		t.Fatal("collected no escapes; the -m plumbing is broken (the hot packages are known to have baselined escapes)")
	}
	base, err := ReadBaseline(filepath.Join(root, "lint", "escapes.baseline"))
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 {
		t.Fatal("baseline is empty; regenerate with go run ./cmd/kdlint -escapes -update")
	}
	news, stale := Diff(esc, base)
	for _, e := range news {
		t.Errorf("escape not in committed baseline: %s (%s)", e.Key(), e.Pos)
	}
	for _, k := range stale {
		t.Logf("stale baseline entry (improvement; fold in with -escapes -update): %s", k)
	}
}

// TestGateFailsOnInjectedEscape is the acceptance test for the gate: a
// deliberate heap escape injected into internal/kdtree via a build overlay
// (so the tree itself is untouched) must surface as a new escape against
// the committed baseline, attributed to the right package and function.
func TestGateFailsOnInjectedEscape(t *testing.T) {
	root := moduleRoot(t)
	tmp := t.TempDir()

	injected := filepath.Join(tmp, "zz_injected_escape.go")
	src := `package kdtree

// leakyBox exists only in the overlay of the escape-gate acceptance test:
// returning the address of a local forces it to the heap.
func leakyBox() *[64]float64 {
	var b [64]float64
	b[0] = 1
	return &b
}
`
	if err := os.WriteFile(injected, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	overlay := filepath.Join(tmp, "overlay.json")
	ov := map[string]map[string]string{
		"Replace": {
			filepath.Join(root, "internal", "kdtree", "zz_injected_escape.go"): injected,
		},
	}
	data, err := json.Marshal(ov)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(overlay, data, 0o644); err != nil {
		t.Fatal(err)
	}

	esc, err := Collect(Options{Dir: root, Packages: []string{"kdtune/internal/kdtree"}, Overlay: overlay})
	if err != nil {
		t.Fatal(err)
	}
	base, err := ReadBaseline(filepath.Join(root, "lint", "escapes.baseline"))
	if err != nil {
		t.Fatal(err)
	}
	news, _ := Diff(esc, base)
	want := "kdtune/internal/kdtree :: leakyBox :: moved to heap: b"
	found := false
	for _, e := range news {
		if e.Key() == want {
			found = true
		} else {
			t.Errorf("unexpected extra new escape: %s (%s)", e.Key(), e.Pos)
		}
	}
	if !found {
		t.Fatalf("gate did not flag the injected escape %q; new escapes: %v", want, news)
	}
}
