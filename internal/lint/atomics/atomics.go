// Package atomics enforces all-or-nothing atomicity per variable: a field
// or package-level variable accessed through sync/atomic anywhere in the
// package must be accessed atomically everywhere in it. A mixed site — a
// plain read racing atomic writers, or a plain write racing atomic
// readers — is exactly the bug class the Go memory model gives no
// guarantees about, and it stays silent until the race detector happens
// to schedule the two sides together.
//
// Identity is types.Object: two spellings of the same field (t.pending,
// ten.pending) resolve to one object. The typed wrappers (atomic.Int64,
// atomic.Bool, ...) make mixing impossible by construction; the rule
// exists for the pointer-based API, where nothing stops a later edit from
// writing x.n++ next to atomic.AddInt64(&x.n, 1).
//
// Scope: Config.AtomicsPackages. The defining declaration and the
// address-of expressions inside sync/atomic calls are exempt; everything
// else is a finding (atomics.mixed).
package atomics

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"kdtune/internal/lint"
)

// Rule is the atomics rule.
var Rule = lint.Rule{
	Name:  "atomics",
	Doc:   "a variable accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Check: check,
}

func check(p *lint.Pass) {
	if !p.InAtomicsScope() {
		return
	}
	info := p.Pkg.Info

	// Pass 1: collect the objects whose address feeds a sync/atomic call,
	// and the identifiers making up those sanctioned accesses.
	atomicObjs := map[types.Object]token.Pos{} // object -> first atomic access
	sanctioned := map[*ast.Ident]bool{}        // idents inside atomic call arguments
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := lint.Callee(info, call)
			if lint.FuncPkgPath(callee) != "sync/atomic" {
				return true
			}
			for _, a := range call.Args {
				ue, ok := ast.Unparen(a).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				obj := accessedObject(info, ue.X)
				if obj == nil {
					continue
				}
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = call.Pos()
				}
				markIdents(info, ue.X, obj, sanctioned)
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}

	// Pass 2: every other use of those objects is a plain access.
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				return true
			}
			first, tracked := atomicObjs[obj]
			if !tracked || sanctioned[id] {
				return true
			}
			pos := p.Pkg.Fset.Position(first)
			p.Reportf("atomics.mixed", id.Pos(),
				"%s is accessed atomically at %s:%d but plainly here; the Go memory model makes this a data race",
				obj.Name(), filepath.Base(pos.Filename), pos.Line)
			return true
		})
	}
}

// accessedObject resolves the variable behind an address-of operand:
// x (local or package var) or x.f / (*x).f (struct field).
func accessedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return objectOf(info, e)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.IndexExpr:
		// &xs[i]: element accesses have no stable object identity.
		return nil
	}
	return nil
}

// markIdents records the identifiers under e that resolve to obj, so the
// plain-access pass can skip the atomic call's own operand.
func markIdents(info *types.Info, e ast.Expr, obj types.Object, out map[*ast.Ident]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if info.Uses[id] == obj || info.Defs[id] == obj {
				out[id] = true
			}
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok && s.Obj() == obj {
				out[sel.Sel] = true
			}
		}
		return true
	})
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
