// Package arenafx is the arena-rule fixture: it declares its own pooled
// arena type (the test config names it in ArenaTypes and lists this package
// in ArenaPackages) and exercises every way an alias can cross — or legally
// stay inside — the package surface.
package arenafx

import "sync"

// arena mimics the builder's pooled storage: slices that are recycled after
// every build.
type arena struct {
	nodes []int
	items []float64
	head  *int
}

var pool = sync.Pool{New: func() any { return new(arena) }}

// Result is the exported structure a build hands back.
type Result struct {
	Nodes []int
	n     int
}

// cache is a package-level variable; arena storage parked here outlives the
// build that filled it.
var cache []int

// LeakNodes returns pooled storage across the package boundary.
func LeakNodes() []int {
	a := pool.Get().(*arena)
	defer pool.Put(a)
	return a.nodes // want `LeakNodes returns a value aliasing pooled arena storage`
}

// LeakHead leaks a pointer-typed arena field.
func LeakHead() *int {
	a := pool.Get().(*arena)
	defer pool.Put(a)
	return a.head // want `LeakHead returns a value aliasing pooled arena storage`
}

// LeakWindow shows that slicing keeps the taint: a sub-window of pooled
// storage is still pooled storage.
func LeakWindow(lo, hi int) []float64 {
	a := pool.Get().(*arena)
	defer pool.Put(a)
	return a.items[lo:hi] // want `LeakWindow returns a value aliasing pooled arena storage`
}

// LeakStruct packages the alias inside a struct value; the taint follows
// through composite literals.
func LeakStruct() Result {
	a := pool.Get().(*arena)
	defer pool.Put(a)
	return Result{Nodes: a.nodes} // want `LeakStruct returns a value aliasing pooled arena storage`
}

// CopyNodes is the sanctioned pattern: copy out before the pool takes the
// storage back.
func CopyNodes() []int {
	a := pool.Get().(*arena)
	defer pool.Put(a)
	out := make([]int, len(a.nodes))
	copy(out, a.nodes)
	return out
}

// internalWindow is unexported: aliases that stay inside the package are
// the builder's normal stack discipline and are not flagged.
func internalWindow(a *arena) []int {
	return a.nodes[:0]
}

func stores(a *arena, r *Result) {
	cache = a.nodes                   // want `package variable cache captures pooled arena storage`
	r.Nodes = a.nodes                 // want `field Nodes of exported type Result captures pooled arena storage`
	r.n = len(a.nodes)                // length is a value, not an alias
	cache = make([]int, len(a.nodes)) // sizing from a length is not an alias either
}

// transferOwnership is the Builder.finish pattern: the arena is retired
// from the pool (never Put back), so handing its storage to the result is
// an ownership transfer, documented where it happens.
func transferOwnership(a *arena, r *Result) {
	//kdlint:allow arena.store arena retired from pool; ownership transfers to Result
	r.Nodes = a.nodes
}

// reset is an arena method: the pooling machinery itself may do anything
// with its own fields.
func (a *arena) reset() []int {
	a.nodes = a.nodes[:0]
	return a.nodes
}
