// Package ctxfx is the ctxflow-rule fixture. It imports the real
// kdtune/internal/parallel and kdtune/internal/kdtree packages so the
// guard- and canceler-provenance checks run against genuine signatures;
// the test rescopes Config.CtxFlowPackages onto this package.
package ctxfx

import (
	"context"
	"sync"
	"time"

	"kdtune/internal/kdtree"
	"kdtune/internal/parallel"
	"kdtune/internal/vecmath"
)

func rawOps(ch chan int, out chan<- int) {
	<-ch           // want `channel receive outside select cannot observe the request deadline`
	out <- 1       // want `channel send outside select cannot observe the request deadline`
	for range ch { // want `range over a channel cannot observe the request deadline`
	}
}

func timers(wg *sync.WaitGroup) {
	time.Sleep(time.Millisecond) // want `time\.Sleep on a request path ignores the deadline`
	wg.Wait()                    // want `WaitGroup\.Wait cannot observe the request deadline`
}

func selects(ctx context.Context, ch chan int) {
	select { // want `select has neither a default nor a <-ctx\.Done\(\) case`
	case v := <-ch:
		_ = v
	}
	select { // bounded by the request context
	case <-ch:
	case <-ctx.Done():
	}
	select { // non-blocking poll
	case <-ch:
	default:
	}
}

// fill mirrors the serve layer's singleflight latch.
type fill struct{ done chan struct{} }

// waitFill is PR 9's stranded-waiter shape: parking on a latch with no
// deadline. If the filler dies unpublished, the request hangs forever.
func waitFill(f *fill) {
	<-f.done // want `channel receive outside select cannot observe the request deadline`
}

// waitFillBounded is the sanctioned rewrite.
func waitFillBounded(ctx context.Context, f *fill) error {
	select {
	case <-f.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ticket mirrors the admission semaphore: the token return receives from
// a buffered channel this goroutine previously sent on, so it cannot
// block — the pragma records that argument.
type ticket struct{ slots chan struct{} }

func (t *ticket) close() {
	<-t.slots //kdlint:noctx buffered semaphore token return never blocks
}

func guardedInline(ctx context.Context, b *kdtree.Builder, tris []vecmath.Triangle, cfg kdtree.Config) {
	b.BuildGuarded(tris, cfg, kdtree.GuardFromContext(ctx, kdtree.Guard{MaxDepth: 8}))
}

func guardedRaw(b *kdtree.Builder, tris []vecmath.Triangle, cfg kdtree.Config) {
	b.BuildGuarded(tris, cfg, kdtree.Guard{MaxDepth: 8}) // want `guard for BuildGuarded does not derive from kdtune/internal/kdtree\.GuardFromContext`
}

func guardedViaLocal(ctx context.Context, b *kdtree.Builder, tris []vecmath.Triangle, cfg kdtree.Config) {
	g := kdtree.GuardFromContext(ctx, kdtree.Guard{MaxDepth: 8})
	b.BuildGuarded(tris, cfg, g)
}

// guardedParam trusts the caller to have composed the guard.
func guardedParam(b *kdtree.Builder, g kdtree.Guard, tris []vecmath.Triangle, cfg kdtree.Config) {
	b.BuildGuarded(tris, cfg, g)
}

func unlinkedCanceler(xs []float64) {
	var cc parallel.Canceler
	parallel.ForCancel(&cc, len(xs), 2, func(lo, hi int) {}) // want `Canceler cc reaches a dispatch without a dominating kdtune/internal/parallel\.LinkContext`
}

func linkedCanceler(ctx context.Context, xs []float64) {
	var cc parallel.Canceler
	stop := parallel.LinkContext(ctx, &cc)
	defer stop()
	parallel.ForCancel(&cc, len(xs), 2, func(lo, hi int) {})
}

// linkedOnOneBranch: the link does not dominate the dispatch.
func linkedOnOneBranch(ctx context.Context, fast bool, xs []float64) {
	var cc parallel.Canceler
	if fast {
		stop := parallel.LinkContext(ctx, &cc)
		defer stop()
	}
	parallel.ForCancel(&cc, len(xs), 2, func(lo, hi int) {}) // want `Canceler cc reaches a dispatch without a dominating kdtune/internal/parallel\.LinkContext`
}

// paramCanceler trusts the caller to have linked it.
func paramCanceler(cc *parallel.Canceler, xs []float64) {
	parallel.ForCancel(cc, len(xs), 2, func(lo, hi int) {})
}

// renderOpts mirrors an options literal carrying a cancellation hook.
type renderOpts struct{ cancel *parallel.Canceler }

func optsLiteralUnlinked(run func(renderOpts)) {
	var cc parallel.Canceler
	run(renderOpts{cancel: &cc}) // want `Canceler cc reaches a dispatch without a dominating kdtune/internal/parallel\.LinkContext`
}

func optsLiteralLinked(ctx context.Context, run func(renderOpts)) {
	var cc parallel.Canceler
	stop := parallel.LinkContext(ctx, &cc)
	defer stop()
	run(renderOpts{cancel: &cc})
}
