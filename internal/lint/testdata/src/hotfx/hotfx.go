// Package hotfx is the hotpath-rule fixture: allocation sites inside the
// loops of //kdlint:hotpath-marked functions must be reported; unmarked
// functions and loop-free allocations must not.
package hotfx

type node struct{ next *node }

// traverse walks a list the way the traversal kernels walk the tree.
//
//kdlint:hotpath
func traverse(head *node, xs []float64) float64 {
	sum := 0.0
	var stack []*node
	for n := head; n != nil; n = n.next {
		stack = append(stack, n)  // want `append may grow its backing array inside a loop of hot path traverse`
		buf := make([]float64, 4) // want `make allocates inside a loop of hot path traverse`
		_ = buf
		p := new(node) // want `new allocates inside a loop of hot path traverse`
		_ = p
		box := &node{} // want `address-taken composite literal allocates inside a loop of hot path traverse`
		_ = box
		pair := []float64{1, 2} // want `composite literal allocates inside a loop of hot path traverse`
		_ = pair
		f := func() float64 { return sum } // want `closure literal allocates inside a loop of hot path traverse`
		sum += f()
	}
	for _, x := range xs {
		sum += x // no allocation: clean hot loop
	}
	_ = stack
	return sum
}

// amortized shows the sanctioned escape hatch: the stack reaches
// steady-state capacity after the first traversal, so the append amortizes
// to zero allocations — the pragma keeps that argument at the site.
//
//kdlint:hotpath
func amortized(head *node, stack []*node) []*node {
	for n := head; n != nil; n = n.next {
		//kdlint:allow hotpath.alloc stack reaches steady-state capacity; append amortizes to zero allocs
		stack = append(stack, n)
	}
	return stack
}

// coldSetup is unmarked: setup code may allocate freely.
func coldSetup(n int) []*node {
	out := make([]*node, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, &node{})
	}
	return out
}

// hoisted allocates before the loop, which is the fix the rule suggests.
//
//kdlint:hotpath
func hoisted(n int) float64 {
	buf := make([]float64, n)
	sum := 0.0
	for i := range buf {
		sum += buf[i]
	}
	return sum
}
