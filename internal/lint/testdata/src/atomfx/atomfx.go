// Package atomfx is the atomics-rule fixture: variables accessed through
// sync/atomic anywhere must be accessed atomically everywhere. The test
// rescopes Config.AtomicsPackages onto this package.
package atomfx

import "sync/atomic"

// gauge mirrors PR 9's mixed-access bug shape: a pending counter bumped
// atomically by one goroutine and read plainly by another.
type gauge struct {
	pending  int64
	fallback int64
}

func (g *gauge) inc() {
	atomic.AddInt64(&g.pending, 1)
}

func (g *gauge) dec() {
	atomic.AddInt64(&g.pending, -1)
}

func (g *gauge) snapshot() int64 {
	return g.pending // want `pending is accessed atomically at atomfx\.go:\d+ but plainly here`
}

func (g *gauge) readFallback() int64 {
	return atomic.LoadInt64(&g.fallback)
}

func (g *gauge) bumpFallback() {
	g.fallback++ // want `fallback is accessed atomically at atomfx\.go:\d+ but plainly here`
}

// hits is a package-level counter with consistent atomic access.
var hits int64

func bump()        { atomic.AddInt64(&hits, 1) }
func total() int64 { return atomic.LoadInt64(&hits) }

// misses mixes: atomic writer, plain reader.
var misses int64

func miss()         { atomic.AddInt64(&misses, 1) }
func missed() int64 { return misses } // want `misses is accessed atomically at atomfx\.go:\d+ but plainly here`

// typed is immune by construction: the wrapper API has no plain spelling.
type typed struct {
	n atomic.Int64
}

func (t *typed) inc()       { t.n.Add(1) }
func (t *typed) get() int64 { return t.n.Load() }

// plain is never touched atomically; plain access everywhere is fine.
type plain struct{ n int64 }

func (p *plain) inc()       { p.n++ }
func (p *plain) get() int64 { return p.n }
