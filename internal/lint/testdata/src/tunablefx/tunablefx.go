// Package tunablefx is the tunable-rule fixture. It imports the real
// kdtune/internal/parallel and kdtune/internal/sah packages so the
// argument-position tables inside the rule are checked against genuine
// signatures; the test rescopes TunablePackages onto this package.
package tunablefx

import (
	"kdtune/internal/parallel"
	"kdtune/internal/sah"
	"kdtune/internal/vecmath"
)

func literalGrains(cc *parallel.Canceler, xs []float64) {
	parallel.ForGrain(len(xs), 4, 4096, func(lo, hi int) {})                    // want `hard-coded grain 4096 at parallel\.ForGrain`
	parallel.ForChunks(len(xs), 4, 1<<12, func(chunk, lo, hi int) {})           // want `hard-coded grain 4096 at parallel\.ForChunks`
	parallel.ForGrainCancel(cc, len(xs), 4, 2048, func(lo, hi int) {})          // want `hard-coded grain 2048 at parallel\.ForGrainCancel`
	parallel.ForChunksCancel(cc, len(xs), 4, (256), func(chunk, lo, hi int) {}) // want `hard-coded grain 256 at parallel\.ForChunksCancel`
	_ = parallel.ChunkCount(len(xs), 4, 512)                                    // want `hard-coded grain 512 at parallel\.ChunkCount`
}

// neutralGrains: 0 and 1 are sentinels, not scheduling constants — 1 means
// "no grain floor" (across-node dispatch), 0 selects a named default.
func neutralGrains(cc *parallel.Canceler, xs []float64) {
	parallel.ForChunksCancel(cc, len(xs), 4, 1, func(chunk, lo, hi int) {})
	parallel.ForGrain(len(xs), 4, 0, func(lo, hi int) {})
	_ = parallel.ChunkCount(len(xs), 4, 1)
}

// threadedGrains: values arriving through a variable or a named constant are
// the sanctioned spellings — the registry owns the variable, the constant is
// the registered default.
func threadedGrains(cc *parallel.Canceler, xs []float64, grain int) {
	parallel.ForChunksCancel(cc, len(xs), 4, grain, func(chunk, lo, hi int) {})
	parallel.ForGrainCancel(cc, len(xs), 4, sah.DefaultBinGrain, func(lo, hi int) {})
}

func literalSAH(cc *parallel.Canceler, node vecmath.AABB, prims []vecmath.AABB) {
	p := sah.Params{CI: 17, CB: 10}
	_, _ = sah.FindBestSplitBinned(p, node, prims, 32)                                                                    // want `hard-coded bins 32 at sah\.FindBestSplitBinned`
	_, _ = sah.FindBestSplitBinnedChunks(p, node, len(prims), 64, 4, 2048, func(bs *sah.BinSet, lo, hi int) {})           // want `hard-coded bins 64 at sah\.FindBestSplitBinnedChunks` `hard-coded grain 2048 at sah\.FindBestSplitBinnedChunks`
	_, _ = sah.FindBestSplitBinnedChunksCancel(cc, p, node, len(prims), 16, 4, 4096, func(bs *sah.BinSet, lo, hi int) {}) // want `hard-coded bins 16 at sah\.FindBestSplitBinnedChunksCancel` `hard-coded grain 4096 at sah\.FindBestSplitBinnedChunksCancel`
}

// tunedSAH threads every scheduling argument from variables (the registry's
// targets); the default-selecting grain 0 stays legal too.
func tunedSAH(cc *parallel.Canceler, node vecmath.AABB, prims []vecmath.AABB, bins, grain int) {
	p := sah.Params{CI: 17, CB: 10}
	_, _ = sah.FindBestSplitBinnedChunksCancel(cc, p, node, len(prims), bins, 4, grain, func(bs *sah.BinSet, lo, hi int) {})
	_, _ = sah.FindBestSplitBinnedChunks(p, node, len(prims), bins, 4, 0, func(bs *sah.BinSet, lo, hi int) {})
}

// suppressed shows the sanctioned escape hatch: a pinned grain with a reason.
func suppressed(xs []float64) {
	parallel.ForGrain(len(xs), 4, 4096, func(lo, hi int) {}) //kdlint:allow tunable.grain fixture: microbenchmark pins one grain on purpose
}
