// Package detfx is the determinism-rule fixture: it is listed in the test
// config's DeterminismPackages, so every wall-clock read, global-source
// rand call, map range, and raw goroutine below must be reported (or
// suppressed by the pragma sites, which double as suppression tests).
package detfx

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `time\.Now in a determinism-scoped package`
	return time.Since(start) // want `time\.Since in a determinism-scoped package`
}

func deadline(d time.Duration) time.Duration {
	return time.Until(time.Time{}.Add(d)) // want `time\.Until`
}

func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want `math/rand\.Shuffle draws from the global source`
	return rand.Intn(10)               // want `math/rand\.Intn draws from the global source`
}

func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // constructors are fine: the seed is explicit
	return rng.Float64()
}

func mapOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is nondeterministic`
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// commutativeFold shows the sanctioned escape hatch: the fold is a sum, so
// visit order cannot change the result, and the pragma records that
// argument on the line it covers.
func commutativeFold(m map[string]int) int {
	total := 0
	//kdlint:allow determinism.maprange summing ints commutes; order cannot change the total
	for _, v := range m {
		total += v
	}
	return total
}

func rawGoroutine(ch chan int) {
	go func() { ch <- 1 }() // want `raw go statement outside the parallel substrate`
}
