// Package resfx is the resource-rule fixture: acquire/release pairing and
// latch publication must hold on every path out, panic edges included.
// The test rescopes Config.ResourcePackages onto this package and declares
// pool.Get/GetErr -> Put (or conn.Close) as the resource protocol and
// latch{} -> publish/close(done) as the latch protocol.
package resfx

type conn struct{ live bool }

func (c *conn) Close() { c.live = false }

type pool struct{ free []*conn }

func (p *pool) Get() *conn             { return &conn{live: true} }
func (p *pool) GetErr() (*conn, error) { return &conn{live: true}, nil }
func (p *pool) Put(c *conn)            { p.free = append(p.free, c) }

func use(c *conn)      {}
func work(c *conn) int { return 1 }

// balanced: acquire and release on the only path.
func balanced(p *pool) {
	c := p.Get()
	use(c)
	p.Put(c)
}

// leakOnEarlyReturn mirrors PR 9's leaked pooled Builder: one branch of
// the ladder returns without putting the builder back.
func leakOnEarlyReturn(p *pool, degraded bool) {
	c := p.Get() // want `conn bound to c does not reach a release on every path out \(an early return or fall-through escapes it\)`
	if degraded {
		return
	}
	use(c)
	p.Put(c)
}

// leakOnPanicEdge: the release is unreachable from the explicit panic.
func leakOnPanicEdge(p *pool, n int) {
	c := p.Get() // want `conn bound to c does not reach a release on every path out \(a panic edge escapes it\)`
	if n < 0 {
		panic("negative budget")
	}
	use(c)
	p.Put(c)
}

// deferredClose is credited on every exit, panic edges included.
func deferredClose(p *pool, n int) {
	c := p.Get()
	defer c.Close()
	if n < 0 {
		panic("negative budget")
	}
	use(c)
}

// deferredPut: releasing through the pool in a deferred call also covers.
func deferredPut(p *pool, degraded bool) {
	c := p.Get()
	defer p.Put(c)
	if degraded {
		return
	}
	use(c)
}

// errWaiver: the branch taken when the acquiring call's error is non-nil
// has no resource to release.
func errWaiver(p *pool) (int, error) {
	c, err := p.GetErr()
	if err != nil {
		return 0, err
	}
	v := work(c)
	p.Put(c)
	return v, nil
}

// dropped discards the acquire result outright.
func dropped(p *pool) {
	p.Get() // want `result of conn acquire is discarded; the value can never be released`
}

type holder struct{ c *conn }

// storeTransfers: a field store hands ownership to the holder.
func storeTransfers(p *pool, h *holder) {
	c := p.Get()
	h.c = c
}

// returnTransfers: returning the value hands ownership to the caller.
func returnTransfers(p *pool) *conn {
	c := p.Get()
	return c
}

// literalTransfers: storing into a composite literal hands ownership on.
func literalTransfers(p *pool) *holder {
	c := p.Get()
	return &holder{c: c}
}

// latch mirrors the serve layer's singleflight fill latch.
type latch struct {
	done chan struct{}
	val  int
}

func (l *latch) publish(v int) {
	l.val = v
	close(l.done)
}

// publishEveryPath closes the latch before both returns.
func publishEveryPath(fast bool) *latch {
	l := &latch{done: make(chan struct{})}
	if fast {
		l.publish(1)
		return l
	}
	l.val = 2
	close(l.done)
	return l
}

// strandedLatch mirrors PR 9's stranded-waiter bug: the early return
// leaves the latch unpublished and every waiter parked forever.
func strandedLatch(fail bool) *latch {
	l := &latch{done: make(chan struct{})} // want `latch kdtune/internal/lint/testdata/src/resfx\.latch bound to l is not published on every path out \(an early return or fall-through escapes it\); waiters would strand`
	if fail {
		return nil
	}
	l.publish(1)
	return l
}

// strandedOnPanic: the worker body can panic before the publish.
func strandedOnPanic(n int) *latch {
	l := &latch{done: make(chan struct{})} // want `latch kdtune/internal/lint/testdata/src/resfx\.latch bound to l is not published on every path out \(a panic edge escapes it\); waiters would strand`
	if n < 0 {
		panic("negative budget")
	}
	l.publish(n)
	return l
}

// publishOnPanic is the sanctioned idiom from the serve layer: a deferred
// recover path publishes through a local closure, so no edge strands it.
func publishOnPanic(n int) *latch {
	l := &latch{done: make(chan struct{})}
	publish := func(v int) {
		l.val = v
		close(l.done)
	}
	defer func() {
		if r := recover(); r != nil {
			publish(-1)
		}
	}()
	if n < 0 {
		panic("negative budget")
	}
	publish(n)
	return l
}

// handoff: passing the latch to a callee transfers the publish duty.
func handoff(start func(*latch)) *latch {
	l := &latch{done: make(chan struct{})}
	start(l)
	return l
}
