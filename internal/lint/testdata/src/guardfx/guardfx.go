// Package guardfx is the guard-rule fixture. It imports the real
// kdtune/internal/parallel and kdtune/internal/kdtree packages, so the
// type-based call-site matching (including generic instantiation and
// pointer receivers) is exercised against genuine signatures.
package guardfx

import (
	"kdtune/internal/kdtree"
	"kdtune/internal/parallel"
	"kdtune/internal/vecmath"
)

func plainDispatches(xs []float64) {
	parallel.For(len(xs), 4, func(lo, hi int) {})                                                                       // want `parallel\.For dispatches without a cancellation point`
	parallel.ForGrain(len(xs), 4, 64, func(lo, hi int) {})                                                              // want `parallel\.ForGrain dispatches without a cancellation point`
	parallel.ForChunks(len(xs), 4, 64, func(chunk, lo, hi int) {})                                                      // want `parallel\.ForChunks dispatches without a cancellation point`
	parallel.ForEach(len(xs), 4, func(i int) {})                                                                        // want `parallel\.ForEach has no Cancel variant`
	parallel.ExclusiveScan(xs, xs, 4)                                                                                   // want `parallel\.ExclusiveScan dispatches without a cancellation point`
	parallel.Reduce(len(xs), 4, 0.0, func(i int) float64 { return xs[i] }, func(a, b float64) float64 { return a + b }) // want `parallel\.Reduce dispatches without a cancellation point`
	parallel.SortFunc(xs, 4, func(a, b float64) int { return 0 })                                                       // want `parallel\.SortFunc dispatches without a cancellation point`
}

func nilCanceler(xs []float64) {
	parallel.ForCancel(nil, len(xs), 4, func(lo, hi int) {})                          // want `parallel\.ForCancel threads a nil Canceler`
	parallel.SortFuncCancel[float64](nil, xs, 4, func(a, b float64) int { return 0 }) // want `parallel\.SortFuncCancel threads a nil Canceler`
}

func threaded(cc *parallel.Canceler, xs []float64) {
	parallel.ForCancel(cc, len(xs), 4, func(lo, hi int) {})
	parallel.ForChunksCancel(cc, len(xs), 4, 64, func(chunk, lo, hi int) {})
	parallel.ExclusiveScanCancel(cc, xs, xs, 4)
	parallel.SortFuncCancel(cc, xs, 4, func(a, b float64) int { return 0 })
}

func spawns(p *parallel.Pool, cc *parallel.Canceler) {
	p.Spawn(func() {}) // want `Pool\.Spawn has no cancellation parameter`

	//kdlint:nocancel the task polls cc at its own chunk boundaries
	p.Spawn(func() { _ = cc.Canceled() })
}

// suppressedDispatch shows a justified plain dispatch: the pragma rides at
// the end of the offending line.
func suppressedDispatch(xs []float64) {
	parallel.For(len(xs), 4, func(lo, hi int) {}) //kdlint:nocancel fixture: bounded 3-element dispatch cannot block an abort
}

func rawEntries(tris []vecmath.Triangle, cfg kdtree.Config) *kdtree.Tree {
	b := kdtree.NewBuilder()
	t := b.Build(tris, cfg) // want `unguarded build entry kdtune/internal/kdtree\.Builder\.Build`
	_ = t
	return kdtree.Build(tris, cfg) // want `unguarded build entry kdtune/internal/kdtree\.Build`
}

func guardedEntry(tris []vecmath.Triangle, cfg kdtree.Config) (*kdtree.Tree, error) {
	return kdtree.NewBuilder().BuildGuarded(tris, cfg, kdtree.Guard{})
}

// justifiedRawEntry shows the sanctioned escape hatch for entry discipline.
func justifiedRawEntry(tris []vecmath.Triangle, cfg kdtree.Config) *kdtree.Tree {
	//kdlint:noguard fixture: caller owns the process lifetime and wants the panic
	return kdtree.Build(tris, cfg)
}
