// Package pragmafx is the pragma-engine fixture: malformed suppressions
// are themselves diagnostics, and a reasonless pragma must not suppress
// anything. Pragma lines cannot carry trailing comments, so expectations
// use the harness's want-above form; the pragmas sit inside function
// bodies, where gofmt leaves comment order alone.
package pragmafx

import "kdtune/internal/parallel"

func typoDirective() {
	//kdlint:nocacnel typo in the directive name
	// want-above `unknown kdlint directive "nocacnel"`
}

// reasonless carries a pragma with no justification: the pragma is flagged
// AND the dispatch it tried to cover is still reported.
func reasonless(xs []float64) {
	//kdlint:nocancel
	// want-above `kdlint:nocancel suppresses guard.cancel but gives no reason`
	parallel.For(len(xs), 2, func(lo, hi int) {}) // want `parallel\.For dispatches without a cancellation point`
}

func allowMissingReason() {
	//kdlint:allow determinism.maprange
	// want-above `kdlint:allow needs a rule category and a reason`
}

// covered shows a valid pragma suppressing from the line above.
func covered(xs []float64) {
	//kdlint:nocancel fixture: two-element dispatch cannot block an abort
	parallel.For(len(xs), 2, func(lo, hi int) {})
}
