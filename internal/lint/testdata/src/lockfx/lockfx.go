// Package lockfx is the locks-rule fixture: no blocking operation while a
// mutex may be held, and every observed lock nesting must be declared in
// Config.LockOrder. The test rescopes Config.LocksPackages onto this
// package and declares the order outer.mu < inner.mu plus a LockMethods
// entry for table.get.
package lockfx

import (
	"sync"
	"time"

	"kdtune/internal/parallel"
)

// entry mirrors PR 9's e.mu deadlock shape: a cache entry whose mutex
// was held across a wait on the entry's own fill latch.
type entry struct {
	mu   sync.Mutex
	done chan struct{}
	val  int
}

func waitWhileLocked(e *entry) {
	e.mu.Lock()
	<-e.done // want `channel receive while kdtune/internal/lint/testdata/src/lockfx\.entry\.mu is held`
	e.mu.Unlock()
}

func waitAfterUnlock(e *entry) {
	e.mu.Lock()
	v := e.val
	e.mu.Unlock()
	<-e.done
	_ = v
}

// deferredUnlockHoldsToExit: for this analysis a deferred Unlock keeps
// the lock held through the body — exactly the window being policed.
func deferredUnlockHoldsToExit(e *entry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	<-e.done // want `channel receive while kdtune/internal/lint/testdata/src/lockfx\.entry\.mu is held`
}

func selectWhileLocked(e *entry, tick chan struct{}) {
	e.mu.Lock()
	select { // want `select while kdtune/internal/lint/testdata/src/lockfx\.entry\.mu is held`
	case <-e.done:
	case <-tick:
	}
	e.mu.Unlock()
}

func pollWhileLocked(e *entry) {
	e.mu.Lock()
	select { // non-blocking poll: a default case cannot park the holder
	case <-e.done:
	default:
	}
	e.mu.Unlock()
}

func sleepWhileLocked(e *entry) {
	e.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while kdtune/internal/lint/testdata/src/lockfx\.entry\.mu is held`
	e.mu.Unlock()
}

func sendWhileLocked(e *entry, out chan int) {
	e.mu.Lock()
	out <- e.val // want `channel send while kdtune/internal/lint/testdata/src/lockfx\.entry\.mu is held`
	e.mu.Unlock()
}

func dispatchWhileLocked(e *entry, xs []float64) {
	e.mu.Lock()
	parallel.For(len(xs), 2, func(lo, hi int) {}) // want `kdtune/internal/parallel\.For while kdtune/internal/lint/testdata/src/lockfx\.entry\.mu is held`
	e.mu.Unlock()
}

// goroutineEscapes: the launched body blocks, the holder does not.
func goroutineEscapes(e *entry, done chan struct{}) {
	e.mu.Lock()
	go notify(done)
	e.mu.Unlock()
}

func notify(done chan struct{}) { <-done }

// heldOnOneBranch: may-analysis — the lock is held on one path into the
// receive, so the receive is flagged.
func heldOnOneBranch(e *entry, fast bool) {
	if !fast {
		e.mu.Lock()
	}
	<-e.done // want `channel receive while kdtune/internal/lint/testdata/src/lockfx\.entry\.mu is held`
	if !fast {
		e.mu.Unlock()
	}
}

type inner struct {
	mu sync.Mutex
	n  int
}

type outer struct {
	mu sync.Mutex
	in inner
}

// declaredNesting follows the declared order outer.mu < inner.mu.
func declaredNesting(o *outer) {
	o.mu.Lock()
	o.in.mu.Lock()
	o.in.n++
	o.in.mu.Unlock()
	o.mu.Unlock()
}

// reversedNesting inverts it.
func reversedNesting(o *outer) {
	o.in.mu.Lock()
	o.mu.Lock() // want `acquires kdtune/internal/lint/testdata/src/lockfx\.outer\.mu while kdtune/internal/lint/testdata/src/lockfx\.inner\.mu is held, reversing the declared order`
	o.mu.Unlock()
	o.in.mu.Unlock()
}

type table struct {
	mu sync.Mutex
	m  map[string]int
}

func (t *table) get(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[k]
}

// undeclaredNesting: table.get acquires table.mu internally (declared in
// LockMethods); taking it under entry.mu is a nesting no one reviewed.
func undeclaredNesting(e *entry, t *table) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return t.get("k") // want `undeclared lock nesting: kdtune/internal/lint/testdata/src/lockfx\.table\.mu acquired while kdtune/internal/lint/testdata/src/lockfx\.entry\.mu is held`
}

// selfNesting: two instances of one class with no declared self-order.
func selfNesting(a, b *entry) {
	a.mu.Lock()
	b.mu.Lock() // want `acquires kdtune/internal/lint/testdata/src/lockfx\.entry\.mu while another instance of the same class is held`
	b.val, a.val = a.val, b.val
	b.mu.Unlock()
	a.mu.Unlock()
}
