// Package ctxflow checks that every blocking operation in a
// request-serving package is dominated by the request's context: the
// termination guarantee ("every admitted request terminates by its
// deadline") only holds if nothing on the request path can block past it.
//
// Three categories, all scoped to Config.CtxFlowPackages:
//
//   - ctxflow.block: a raw channel send/receive, a select with neither a
//     default nor a <-ctx.Done() case, a range over a channel, time.Sleep,
//     or a WaitGroup/Pool wait. None of these can observe the deadline, so
//     each needs either a context-aware rewrite or a //kdlint:noctx pragma
//     explaining why it cannot block (e.g. a buffered-semaphore token
//     return).
//
//   - ctxflow.guard: a call to the guarded build entry (Config.GuardedEntry)
//     whose Guard argument does not trace to Config.CtxGuardFunc — the
//     build would not abort when the request's deadline expires.
//
//   - ctxflow.link: a Canceler (Config.CancelerType) handed to a dispatch
//     or options literal without a dominating Config.CtxLinkFunc call on
//     the same variable — the kernel polls a flag nothing ever sets.
//
// The analysis is intraprocedural over the cfg package's graphs; a
// Canceler or Guard received as a parameter is trusted to have been linked
// by the caller (the rule fires where the value is created).
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"kdtune/internal/lint"
	"kdtune/internal/lint/cfg"
)

// Rule is the ctxflow rule.
var Rule = lint.Rule{
	Name:  "ctxflow",
	Doc:   "blocking operations on request paths must be dominated by the request context",
	Check: check,
}

func check(p *lint.Pass) {
	if !p.InCtxFlowScope() {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, fn := range cfg.Functions(f) {
			checkFunc(p, fn)
		}
	}
}

func checkFunc(p *lint.Pass, fn cfg.Func) {
	info := p.Pkg.Info
	g := cfg.New(fn.Body, info)

	// Comm statements of selects are mediated by the select itself (the
	// blocking point the rule judges); their channel operations are not
	// raw. Range statements are caught here too: the CFG decomposes them
	// into loop blocks and only their X expression survives as a node.
	comms := map[ast.Node]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a separate function with its own graph
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				if comm := cl.(*ast.CommClause).Comm; comm != nil {
					comms[comm] = true
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					p.Reportf("ctxflow.block", n.X.Pos(),
						"range over a channel cannot observe the request deadline")
				}
			}
		}
		return true
	})

	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if comms[n] {
				continue
			}
			if sel, ok := n.(*ast.SelectStmt); ok {
				if !selectIsBounded(info, sel) {
					p.Reportf("ctxflow.block", sel.Pos(),
						"select has neither a default nor a <-ctx.Done() case; it can block past the request deadline")
				}
				continue
			}
			pt, _ := g.PointOf(n)
			cfg.Shallow(n, func(m ast.Node) bool {
				return visit(p, fn, g, pt, m)
			})
		}
	}
}

// visit inspects one leaf node of a block; pt is the node's graph point,
// used for dominance queries by the guard and link checks.
func visit(p *lint.Pass, fn cfg.Func, g *cfg.Graph, pt cfg.Point, m ast.Node) bool {
	info := p.Pkg.Info
	switch m := m.(type) {
	case *ast.GoStmt:
		// Launching a goroutine does not block; its body is a separate
		// function with its own graph.
		return false
	case *ast.SendStmt:
		p.Reportf("ctxflow.block", m.Pos(),
			"channel send outside select cannot observe the request deadline")
		return true
	case *ast.UnaryExpr:
		if m.Op == token.ARROW {
			p.Reportf("ctxflow.block", m.Pos(),
				"channel receive outside select cannot observe the request deadline")
		}
		return true
	case *ast.CallExpr:
		callee := lint.Callee(info, m)
		key := lint.CalleeKey(callee)
		switch key {
		case "time.Sleep":
			p.Reportf("ctxflow.block", m.Pos(),
				"time.Sleep on a request path ignores the deadline; derive the wait from the context")
		case "sync.WaitGroup.Wait":
			p.Reportf("ctxflow.block", m.Pos(),
				"WaitGroup.Wait cannot observe the request deadline")
		}
		if callee != nil && callee.Name() == p.Cfg.GuardedEntry &&
			lint.FuncPkgPath(callee) == p.Cfg.KDTreePackage {
			checkGuardArg(p, fn, g, pt, m)
			return true
		}
		if key != "" && key != p.Cfg.CtxLinkFunc {
			checkCancelerArgs(p, fn, g, pt, m.Args)
		}
		if inList(key, p.Cfg.BlockingFuncs) && !hasCancelArg(info, p.Cfg, m) &&
			(callee == nil || callee.Name() != p.Cfg.GuardedEntry) {
			p.Reportf("ctxflow.block", m.Pos(),
				"%s can block past the request deadline and no Canceler is threaded", key)
		}
		return true
	case *ast.CompositeLit:
		checkCancelerFields(p, fn, g, pt, m)
		return true
	}
	return true
}

// selectIsBounded reports whether sel has a default clause (non-blocking
// poll) or a case receiving from a context's Done channel.
func selectIsBounded(info *types.Info, sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		comm := cl.(*ast.CommClause)
		if comm.Comm == nil {
			return true // default clause
		}
		var recv ast.Expr
		switch c := comm.Comm.(type) {
		case *ast.ExprStmt:
			recv = c.X
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				recv = c.Rhs[0]
			}
		}
		ue, ok := ast.Unparen(recv).(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW {
			continue
		}
		call, ok := ast.Unparen(ue.X).(*ast.CallExpr)
		if !ok {
			continue
		}
		selx, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || selx.Sel.Name != "Done" {
			continue
		}
		if isContext(info.TypeOf(selx.X)) {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	n := lint.NamedOf(t)
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// checkGuardArg verifies the Guard argument of a guarded-entry call traces
// to Config.CtxGuardFunc: directly in the argument expression, through a
// variable whose dominating assignment derives it, or as a parameter the
// caller composed.
func checkGuardArg(p *lint.Pass, fn cfg.Func, g *cfg.Graph, pt cfg.Point, call *ast.CallExpr) {
	info := p.Pkg.Info
	guardType := p.Cfg.KDTreePackage + ".Guard"
	var arg ast.Expr
	for _, a := range call.Args {
		if n := lint.NamedOf(info.TypeOf(a)); n != nil && typeKey(n) == guardType {
			arg = a
		}
	}
	if arg == nil {
		return // signature mismatch; nothing to judge
	}
	if containsCall(info, arg, p.Cfg.CtxGuardFunc) {
		return
	}
	if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
		obj := info.Uses[id]
		if obj != nil && isParam(info, fn, obj) {
			return // composed by the caller
		}
		if obj != nil && hasDominatingAssign(p, g, pt, obj, func(rhs ast.Expr) bool {
			return containsCall(info, rhs, p.Cfg.CtxGuardFunc)
		}) {
			return
		}
	}
	p.Reportf("ctxflow.guard", arg.Pos(),
		"guard for %s does not derive from %s; the build cannot abort on deadline expiry",
		p.Cfg.GuardedEntry, p.Cfg.CtxGuardFunc)
}

// checkCancelerArgs audits Canceler-typed values among call arguments.
func checkCancelerArgs(p *lint.Pass, fn cfg.Func, g *cfg.Graph, pt cfg.Point, args []ast.Expr) {
	for _, a := range args {
		if isCanceler(p, a) {
			checkCancelerUse(p, fn, g, pt, a)
		}
	}
}

// checkCancelerFields audits Canceler-typed values stored into composite
// literal fields (e.g. render.Options{Cancel: &cc}).
func checkCancelerFields(p *lint.Pass, fn cfg.Func, g *cfg.Graph, pt cfg.Point, lit *ast.CompositeLit) {
	for _, el := range lit.Elts {
		v := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		if isCanceler(p, v) {
			checkCancelerUse(p, fn, g, pt, v)
		}
	}
}

func isCanceler(p *lint.Pass, e ast.Expr) bool {
	if lint.IsNilIdent(p.Pkg.Info, e) {
		return false
	}
	n := lint.NamedOf(p.Pkg.Info.TypeOf(e))
	return n != nil && typeKey(n) == p.Cfg.CancelerType
}

// checkCancelerUse requires the Canceler behind e to be a parameter
// (linked by the caller) or covered by a dominating CtxLinkFunc call on
// the same variable.
func checkCancelerUse(p *lint.Pass, fn cfg.Func, g *cfg.Graph, pt cfg.Point, e ast.Expr) {
	info := p.Pkg.Info
	obj := cancelerObject(info, e)
	if obj == nil {
		return // field or element; provenance is out of intraprocedural reach
	}
	if isParam(info, fn, obj) {
		return
	}
	if dominatingLink(p, fn, g, pt, obj) {
		return
	}
	p.Reportf("ctxflow.link", e.Pos(),
		"Canceler %s reaches a dispatch without a dominating %s; the kernel polls a flag nothing sets",
		obj.Name(), p.Cfg.CtxLinkFunc)
}

// cancelerObject resolves the local variable behind a Canceler expression:
// &cc or cc. Field selectors return nil.
func cancelerObject(info *types.Info, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ast.Unparen(ue.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// dominatingLink reports whether a CtxLinkFunc call referencing obj sits
// at a point dominating pt within fn's body.
func dominatingLink(p *lint.Pass, fn cfg.Func, g *cfg.Graph, pt cfg.Point, obj types.Object) bool {
	info := p.Pkg.Info
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lint.CalleeKey(lint.Callee(info, call)) != p.Cfg.CtxLinkFunc {
			return true
		}
		if !mentionsObject(info, call, obj) {
			return true
		}
		if lp, ok := g.PointOf(call); ok && g.Dominates(lp, pt) {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasDominatingAssign reports whether an assignment to obj whose RHS
// satisfies pred dominates pt.
func hasDominatingAssign(p *lint.Pass, g *cfg.Graph, pt cfg.Point, obj types.Object, pred func(ast.Expr) bool) bool {
	info := p.Pkg.Info
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				continue
			}
			for j, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if o := objectOf(info, id); o != obj {
					continue
				}
				if pred(as.Rhs[j]) && g.Dominates(cfg.Point{Block: b, Node: i}, pt) {
					return true
				}
			}
		}
	}
	return false
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// mentionsObject reports whether any identifier under n resolves to obj.
func mentionsObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// containsCall reports whether e contains a call to the function with the
// given callee key.
func containsCall(info *types.Info, e ast.Expr, key string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lint.CalleeKey(lint.Callee(info, call)) == key {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasCancelArg reports whether any argument subtree carries a non-nil
// Canceler — directly or inside an options literal.
func hasCancelArg(info *types.Info, c *lint.Config, call *ast.CallExpr) bool {
	found := false
	for _, a := range call.Args {
		ast.Inspect(a, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok || found {
				return !found
			}
			if id, ok := e.(*ast.Ident); ok {
				if _, isNil := info.Uses[id].(*types.Nil); isNil {
					return true
				}
			}
			if nt := lint.NamedOf(info.TypeOf(e)); nt != nil && typeKey(nt) == c.CancelerType {
				found = true
			}
			return !found
		})
	}
	return found
}

// isParam reports whether obj is a parameter (or named result) of fn.
func isParam(info *types.Info, fn cfg.Func, obj types.Object) bool {
	var ft *ast.FuncType
	if fn.Decl != nil {
		ft = fn.Decl.Type
	} else {
		ft = fn.Lit.Type
	}
	match := false
	check := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if info.Defs[name] == obj {
					match = true
				}
			}
		}
	}
	check(ft.Params)
	check(ft.Results)
	if fn.Decl != nil {
		check(fn.Decl.Recv)
	}
	return match
}

func typeKey(n *types.Named) string {
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

func inList(s string, list []string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
