package cfg

import "go/ast"

// Func is one analyzable function body: a declaration or a function
// literal. The dataflow rules analyze each body with its own graph —
// literals are not inlined into their enclosing function.
type Func struct {
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Body *ast.BlockStmt
}

// Name returns the declared name, or "func literal" for literals.
func (f Func) Name() string {
	if f.Decl != nil {
		return f.Decl.Name.Name
	}
	return "func literal"
}

// Functions lists every function body in file, in source order: each
// declaration with a body, and each function literal (at any nesting
// depth) as its own entry.
func Functions(file *ast.File) []Func {
	var out []Func
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, Func{Decl: n, Body: n.Body})
			}
		case *ast.FuncLit:
			out = append(out, Func{Lit: n, Body: n.Body})
		}
		return true
	})
	return out
}

// PointOf locates the graph point whose node's source span contains n,
// preferring the smallest such span (so a statement inside a select
// clause resolves to its clause block, not the select marker). It
// reports false when n is outside every block node of this graph.
func (g *Graph) PointOf(n ast.Node) (Point, bool) {
	var best Point
	found := false
	for _, b := range g.Blocks {
		for i, node := range b.Nodes {
			if node.Pos() <= n.Pos() && n.End() <= node.End() {
				if !found || span(node) < span(best.Block.Nodes[best.Node]) {
					best = Point{Block: b, Node: i}
					found = true
				}
			}
		}
	}
	return best, found
}

func span(n ast.Node) int { return int(n.End() - n.Pos()) }
