// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies, for the dataflow rules under internal/lint/ (ctxflow,
// locks, resource). Like the rest of kdlint it is stdlib-only: no
// golang.org/x/tools, just the parsed AST plus go/types for resolving the
// panic builtin.
//
// The graph is statement-granular. Each Block holds the atomic nodes that
// execute in it, in order; compound statements are decomposed, never stored
// wholesale, so a consumer that walks Block.Nodes sees every leaf statement
// exactly once. The decomposition covers:
//
//   - if/else, for, range, switch, type switch (incl. fallthrough)
//   - short-circuit && / || / ! inside branch conditions — the right-hand
//     operand gets its own block, so a call evaluated only on some paths is
//     only on those paths
//   - labeled break/continue and goto
//   - return edges to Exit, explicit panic(...) edges to Panic
//   - select: the SelectStmt itself is appended as a single marker node in
//     the block that blocks on it (consumers must not descend into it);
//     each comm clause's body becomes a successor block whose first node is
//     the clause's comm statement
//
// defer is recorded twice: the DeferStmt appears in its block (so forward
// analyses see where it is registered) and on Graph.Defers (so must-
// analyses can credit deferred releases to every exit path, including the
// panic edge).
//
// Nested function literals are NOT descended into — each function body,
// named or literal, gets its own graph. Walk with something like
// lint-rule-local logic that skips *ast.FuncLit.
package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Block is one straight-line run of nodes.
type Block struct {
	Index int
	// Nodes are the atomic statements and condition expressions executed in
	// this block, in order. A *ast.SelectStmt node is a blocking-point
	// marker: its clause bodies live in successor blocks, so consumers must
	// not descend into it (helper: Shallow).
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Cond is set when the block ends branching on a boolean condition; by
	// convention Succs[0] is then the true edge and Succs[1] the false edge.
	Cond ast.Expr
}

// Graph is the CFG of one function body.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	// Exit is the normal exit: reached by return statements and by falling
	// off the end of the body.
	Exit *Block
	// Panic is the abnormal exit reached by explicit panic(...) calls. It
	// has no successors; deferred statements still run on paths into it.
	Panic *Block
	// Defers lists every defer statement in the body (outside nested
	// function literals), in source order.
	Defers []*ast.DeferStmt

	dom []big // dominator sets, indexed by Block.Index
}

// Point addresses one node inside the graph: Nodes[Node] of Block.
type Point struct {
	Block *Block
	Node  int
}

// builder state.
type build struct {
	g      *Graph
	cur    *Block
	info   *types.Info
	brk    []*target // break targets, innermost last
	cont   []*target // continue targets, innermost last
	label  string    // label of the statement about to be wired (set by LabeledStmt)
	labels map[string]*Block
	gotos  map[string][]*Block // unresolved forward gotos: label -> source blocks
}

type target struct {
	label string
	block *Block
}

// New builds the CFG of body. info may be nil; it is used only to recognise
// the predeclared panic builtin (without it, any call to an identifier
// named "panic" routes to the Panic exit).
func New(body *ast.BlockStmt, info *types.Info) *Graph {
	g := &Graph{}
	b := &build{g: g, info: info, labels: map[string]*Block{}, gotos: map[string][]*Block{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	g.Panic = b.newBlock()
	b.cur = g.Entry
	b.stmts(body.List)
	b.edge(b.cur, g.Exit)
	for label, srcs := range b.gotos {
		if dst := b.labels[label]; dst != nil {
			for _, s := range srcs {
				b.edge(s, dst)
			}
		}
	}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	g.computeDominators()
	return g
}

func (b *build) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *build) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *build) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// seal terminates the current block (after a return/panic/branch) and
// resumes in a fresh, initially unreachable block so trailing dead code
// still parses into the graph without inheriting edges.
func (b *build) seal() {
	b.cur = b.newBlock()
}

func (b *build) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *build) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		then := b.newBlock()
		merge := b.newBlock()
		els := merge
		if s.Else != nil {
			els = b.newBlock()
		}
		b.cond(s.Cond, then, els)
		b.cur = then
		b.stmts(s.Body.List)
		b.edge(b.cur, merge)
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, merge)
		}
		b.cur = merge

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.cond(s.Cond, body, exit)
		} else {
			b.edge(b.cur, body)
		}
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.pushLoop(exit, post)
		b.cur = body
		b.stmts(s.Body.List)
		b.popLoop()
		if s.Post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
		} else {
			b.edge(b.cur, head)
		}
		b.cur = exit

	case *ast.RangeStmt:
		b.addExpr(s.X)
		head := b.newBlock()
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(b.cur, head)
		b.edge(head, body)
		b.edge(head, exit)
		b.pushLoop(exit, head)
		b.cur = body
		b.stmts(s.Body.List)
		b.popLoop()
		b.edge(b.cur, head)
		b.cur = exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.addExpr(s.Tag)
		}
		b.caseClauses(s.Body.List, func(cc *ast.CaseClause) []ast.Stmt { return cc.Body })

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, func(cc *ast.CaseClause) []ast.Stmt { return cc.Body })

	case *ast.SelectStmt:
		head := b.cur
		b.add(s) // blocking-point marker; consumers must not descend
		merge := b.newBlock()
		b.pushBreak(merge)
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			b.stmts(comm.Body)
			b.edge(b.cur, merge)
		}
		b.popBreak()
		if len(s.Body.List) == 0 {
			b.edge(head, merge)
		}
		b.cur = merge

	case *ast.LabeledStmt:
		blk := b.newBlock()
		b.edge(b.cur, blk)
		b.labels[s.Label.Name] = blk
		b.cur = blk
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = "" // a label on a non-loop statement must not leak to a later loop

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.add(s)
			if t := b.findTarget(b.brk, s.Label); t != nil {
				b.edge(b.cur, t)
			}
			b.seal()
		case token.CONTINUE:
			b.add(s)
			if t := b.findTarget(b.cont, s.Label); t != nil {
				b.edge(b.cur, t)
			}
			b.seal()
		case token.GOTO:
			b.add(s)
			name := s.Label.Name
			if dst := b.labels[name]; dst != nil {
				b.edge(b.cur, dst)
			} else {
				b.gotos[name] = append(b.gotos[name], b.cur)
			}
			b.seal()
		case token.FALLTHROUGH:
			// handled structurally in caseClauses
			b.add(s)
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.seal()

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if b.isPanic(s.X) {
			b.edge(b.cur, b.g.Panic)
			b.seal()
		}

	case nil:
		// nothing

	default:
		// assign, send, incdec, decl, go, empty, ...
		b.add(s)
	}
}

// caseClauses wires a (type) switch: every clause body is a block reachable
// from the current head; fallthrough chains a clause into the next one.
func (b *build) caseClauses(clauses []ast.Stmt, bodyOf func(*ast.CaseClause) []ast.Stmt) {
	head := b.cur
	merge := b.newBlock()
	hasDefault := false
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	b.pushBreak(merge)
	for i, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(head, blocks[i])
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.addExpr(e)
		}
		body := bodyOf(cc)
		b.stmts(body)
		if fallsThrough(body) && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1])
		} else {
			b.edge(b.cur, merge)
		}
	}
	b.popBreak()
	if !hasDefault || len(clauses) == 0 {
		b.edge(head, merge)
	}
	b.cur = merge
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// cond wires a branch condition from the current block to the true/false
// targets, decomposing short-circuit operators so each operand evaluates in
// its own block.
func (b *build) cond(e ast.Expr, t, f *Block) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, t, f)
		return
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock()
			b.cond(x.X, mid, f)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock()
			b.cond(x.X, t, mid)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		}
	}
	b.add(e)
	b.cur.Cond = e
	b.cur.Succs = nil
	b.edge(b.cur, t)
	b.edge(b.cur, f)
	b.seal()
}

// addExpr appends a bare expression node (switch tags, range operands, case
// expressions) to the current block.
func (b *build) addExpr(e ast.Expr) {
	if e != nil {
		b.add(e)
	}
}

func (b *build) isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if b.info == nil {
		return true
	}
	_, isBuiltin := b.info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// takeLabel consumes the label recorded by an immediately enclosing
// LabeledStmt, so labeled break/continue can find their statement.
func (b *build) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func (b *build) pushLoop(brk, cont *Block) {
	label := b.takeLabel()
	b.brk = append(b.brk, &target{label: label, block: brk})
	b.cont = append(b.cont, &target{label: label, block: cont})
}

func (b *build) popLoop() {
	b.brk = b.brk[:len(b.brk)-1]
	b.cont = b.cont[:len(b.cont)-1]
}

func (b *build) pushBreak(blk *Block) {
	b.brk = append(b.brk, &target{label: b.takeLabel(), block: blk})
}

func (b *build) popBreak() {
	b.brk = b.brk[:len(b.brk)-1]
}

// findTarget resolves a break/continue target: the innermost enclosing one,
// or the one carrying the label.
func (b *build) findTarget(stack []*target, label *ast.Ident) *Block {
	if len(stack) == 0 {
		return nil
	}
	if label == nil {
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return stack[len(stack)-1].block
}

// --- dominators ---

// big is a tiny bitset sized to the block count.
type big []uint64

func newBig(n int) big       { return make(big, (n+63)/64) }
func (v big) set(i int)      { v[i/64] |= 1 << (i % 64) }
func (v big) has(i int) bool { return v[i/64]&(1<<(i%64)) != 0 }
func (v big) copyFrom(o big) { copy(v, o) }

func (v big) intersect(o big) {
	for i := range v {
		v[i] &= o[i]
	}
}

func (v big) equal(o big) bool {
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// computeDominators runs the classic iterative dataflow: dom(entry) =
// {entry}; dom(b) = {b} ∪ ⋂ dom(preds). Graphs here are function bodies —
// tens of blocks — so the quadratic fixpoint is fine.
func (g *Graph) computeDominators() {
	n := len(g.Blocks)
	g.dom = make([]big, n)
	all := newBig(n)
	for i := 0; i < n; i++ {
		all.set(i)
	}
	for i := range g.dom {
		g.dom[i] = newBig(n)
		if i == g.Entry.Index {
			g.dom[i].set(i)
		} else {
			g.dom[i].copyFrom(all)
		}
	}
	changed := true
	tmp := newBig(n)
	for changed {
		changed = false
		for _, blk := range g.Blocks {
			if blk == g.Entry {
				continue
			}
			tmp.copyFrom(all)
			reachable := false
			for _, p := range blk.Preds {
				tmp.intersect(g.dom[p.Index])
				reachable = true
			}
			if !reachable {
				// Unreachable blocks keep the full set; they dominate
				// nothing that matters.
				continue
			}
			tmp.set(blk.Index)
			if !tmp.equal(g.dom[blk.Index]) {
				g.dom[blk.Index].copyFrom(tmp)
				changed = true
			}
		}
	}
}

// BlockDominates reports whether a dominates b (every path from entry to b
// passes through a). A block dominates itself.
func (g *Graph) BlockDominates(a, b *Block) bool {
	return g.dom[b.Index].has(a.Index)
}

// Dominates reports whether point p executes on every path before point q:
// p's block strictly dominates q's, or they share a block and p comes
// first. Within one node (q.Node == p.Node) it reports false — callers that
// need sub-node ordering must split their points across nodes.
func (g *Graph) Dominates(p, q Point) bool {
	if p.Block == q.Block {
		return p.Node < q.Node
	}
	return g.BlockDominates(p.Block, q.Block)
}

// Shallow walks the leaf content of one block node: for a SelectStmt marker
// it visits nothing (the clauses live in successor blocks); for everything
// else it runs fn over the node but does not descend into nested function
// literals or select statements. fn's return value is the usual
// ast.Inspect continuation.
func Shallow(n ast.Node, fn func(ast.Node) bool) {
	if _, ok := n.(*ast.SelectStmt); ok {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			return false
		}
		return fn(m)
	})
}
