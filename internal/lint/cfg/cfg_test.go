package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parse builds the CFG of the first function declaration in src.
func parse(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package x\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
			return New(fn.Body, nil)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// hasNode reports whether any block node's source rendering contains frag.
func findNode(g *Graph, frag string) (Point, bool) {
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if strings.Contains(render(n), frag) {
				return Point{Block: b, Node: i}, true
			}
		}
	}
	return Point{}, false
}

func render(n ast.Node) string {
	switch n := n.(type) {
	case *ast.ExprStmt:
		return render(n.X)
	case *ast.CallExpr:
		return render(n.Fun) + "()"
	case *ast.SelectorExpr:
		return render(n.X) + "." + n.Sel.Name
	case *ast.Ident:
		return n.Name
	case *ast.AssignStmt:
		out := ""
		for _, l := range n.Lhs {
			out += render(l) + ","
		}
		out += "="
		for _, r := range n.Rhs {
			out += render(r) + ","
		}
		return out
	case *ast.ReturnStmt:
		return "return"
	case *ast.BinaryExpr:
		return render(n.X) + n.Op.String() + render(n.Y)
	case *ast.SelectStmt:
		return "select"
	case *ast.DeferStmt:
		return "defer " + render(n.Call)
	case *ast.UnaryExpr:
		return n.Op.String() + render(n.X)
	case *ast.SendStmt:
		return render(n.Chan) + "<-"
	case *ast.BasicLit:
		return n.Value
	}
	return "?"
}

func TestIfDominance(t *testing.T) {
	g := parse(t, `func f(c bool) {
		setup()
		if c {
			a()
		} else {
			b()
		}
		after()
	}`)
	setup, ok := findNode(g, "setup()")
	if !ok {
		t.Fatal("setup not found")
	}
	a, _ := findNode(g, "a()")
	bb, _ := findNode(g, "b()")
	after, _ := findNode(g, "after()")
	for _, q := range []Point{a, bb, after} {
		if !g.Dominates(setup, q) {
			t.Errorf("setup should dominate %v", render(q.Block.Nodes[q.Node]))
		}
	}
	if g.Dominates(a, after) || g.Dominates(bb, after) {
		t.Error("neither branch arm may dominate the merge")
	}
	if g.Dominates(a, bb) || g.Dominates(bb, a) {
		t.Error("branch arms must not dominate each other")
	}
}

func TestShortCircuitSplitsOperands(t *testing.T) {
	g := parse(t, `func f(p bool) {
		if p && q() {
			a()
		}
		after()
	}`)
	q, ok := findNode(g, "q()")
	if !ok {
		t.Fatal("q() not found as its own node")
	}
	after, _ := findNode(g, "after()")
	// q() only evaluates when p is true: it must not dominate after().
	if g.Dominates(q, after) {
		t.Error("short-circuit RHS must not dominate the merge")
	}
	a, _ := findNode(g, "a()")
	if !g.Dominates(q, a) {
		t.Error("short-circuit RHS dominates the then-branch")
	}
}

func TestLoopBackEdgeAndBreak(t *testing.T) {
	g := parse(t, `func f(n int) {
		for i := 0; i < n; i++ {
			if bad() {
				break
			}
			body()
		}
		after()
	}`)
	body, ok := findNode(g, "body()")
	if !ok {
		t.Fatal("body not found")
	}
	after, _ := findNode(g, "after()")
	if g.Dominates(body, after) {
		t.Error("loop body must not dominate the loop exit (break skips it)")
	}
	cond, ok := findNode(g, "i<n")
	if !ok {
		t.Fatal("loop condition not found")
	}
	if !g.Dominates(cond, body) {
		t.Error("loop condition dominates the body")
	}
	// The condition block must be reachable from the body (back edge).
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if seen[b] {
			return false
		}
		seen[b] = true
		if b == cond.Block {
			return true
		}
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	if !walk(body.Block) {
		t.Error("no back edge from loop body to condition")
	}
}

func TestReturnReachesExitOnly(t *testing.T) {
	g := parse(t, `func f(c bool) {
		if c {
			return
		}
		after()
	}`)
	after, _ := findNode(g, "after()")
	ret, _ := findNode(g, "return")
	// The return's block reaches Exit directly and must not flow to after().
	for _, s := range ret.Block.Succs {
		if s == after.Block {
			t.Error("return must not fall through to the next statement")
		}
	}
	if len(ret.Block.Succs) != 1 || ret.Block.Succs[0] != g.Exit {
		t.Errorf("return block's successor should be Exit, got %d succs", len(ret.Block.Succs))
	}
}

func TestPanicEdge(t *testing.T) {
	g := parse(t, `func f(c bool) {
		if c {
			panic("boom")
		}
		after()
	}`)
	p, ok := findNode(g, "panic()")
	if !ok {
		t.Fatal("panic call not found")
	}
	if len(p.Block.Succs) != 1 || p.Block.Succs[0] != g.Panic {
		t.Error("panic call should edge to the Panic exit only")
	}
	if len(g.Panic.Succs) != 0 {
		t.Error("Panic exit must have no successors")
	}
}

func TestSelectClausesAndMarker(t *testing.T) {
	g := parse(t, `func f(ch chan int, done chan struct{}) {
		select {
		case v := <-ch:
			use(v)
		case <-done:
			quit()
		}
		after()
	}`)
	sel, ok := findNode(g, "select")
	if !ok {
		t.Fatal("select marker not found")
	}
	use, _ := findNode(g, "use()")
	quit, _ := findNode(g, "quit()")
	after, _ := findNode(g, "after()")
	if use.Block == sel.Block || quit.Block == sel.Block {
		t.Error("clause bodies must live in their own blocks, not the select's")
	}
	if !g.Dominates(sel, use) || !g.Dominates(sel, quit) || !g.Dominates(sel, after) {
		t.Error("the select marker dominates its clauses and the merge")
	}
	if g.Dominates(use, after) || g.Dominates(quit, after) {
		t.Error("no single clause dominates the merge")
	}
}

func TestDefersRecorded(t *testing.T) {
	g := parse(t, `func f() {
		defer cleanup()
		work()
	}`)
	if len(g.Defers) != 1 {
		t.Fatalf("got %d defers, want 1", len(g.Defers))
	}
	if _, ok := findNode(g, "defer cleanup()"); !ok {
		t.Error("defer statement should also appear as a block node")
	}
}

func TestLabeledBreak(t *testing.T) {
	g := parse(t, `func f(n int) {
	outer:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if stop() {
					break outer
				}
				inner()
			}
		}
		after()
	}`)
	inner, ok := findNode(g, "inner()")
	if !ok {
		t.Fatal("inner not found")
	}
	after, _ := findNode(g, "after()")
	if g.Dominates(inner, after) {
		t.Error("inner body must not dominate after (labeled break skips it)")
	}
	stop, _ := findNode(g, "stop()")
	if !g.Dominates(stop, inner) {
		t.Error("inner-loop condition path: stop() dominates inner()")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := parse(t, `func f(x int) {
		switch x {
		case 1:
			a()
			fallthrough
		case 2:
			b()
		default:
			c()
		}
		after()
	}`)
	a, _ := findNode(g, "a()")
	bb, _ := findNode(g, "b()")
	after, _ := findNode(g, "after()")
	// a's block must reach b's block via the fallthrough edge.
	reach := false
	for _, s := range a.Block.Succs {
		if s == bb.Block {
			reach = true
		}
	}
	if !reach {
		t.Error("fallthrough must edge into the next case body")
	}
	if g.Dominates(a, after) || g.Dominates(bb, after) {
		t.Error("no case body dominates the merge when a default exists")
	}
}
