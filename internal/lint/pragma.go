package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// kdlint pragmas are machine-readable suppressions written as Go compiler
// directives (no space after //):
//
//	//kdlint:nocancel <reason>      suppress guard.cancel
//	//kdlint:noguard <reason>       suppress guard.entry
//	//kdlint:noctx <reason>         suppress ctxflow.* (context-dominance)
//	//kdlint:allow <rule> <reason>  suppress any rule category by name
//	//kdlint:hotpath                mark a function as a hot path (not a
//	                                suppression; read by the hotpath rule)
//
// A suppression applies to the pragma's own line and the line below it, so
// it can ride at the end of the offending line or on a comment line
// directly above. Every suppression MUST carry a free-text reason — an
// unexplained suppression is itself a diagnostic (pragma.reason), and an
// unrecognized directive is flagged too (pragma.unknown) so typos cannot
// silently disable a check.

const pragmaPrefix = "//kdlint:"

// suppression is one parsed, valid pragma.
type suppression struct {
	rule string // rule category (or family prefix) it silences
}

// pragmaIndex records valid suppressions by file and line.
type pragmaIndex map[string]map[int][]suppression

// suppresses reports whether d is silenced by a pragma on its own line or
// the line above. A suppression for a rule family (e.g. "guard") covers all
// its categories ("guard.cancel", "guard.entry").
func (idx pragmaIndex) suppresses(d Diagnostic) bool {
	lines := idx[d.Pos.Filename]
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, s := range lines[line] {
			if d.Rule == s.rule || strings.HasPrefix(d.Rule, s.rule+".") {
				return true
			}
		}
	}
	return false
}

// parsePragmas scans every comment of the package for kdlint directives,
// returning the valid suppressions and the diagnostics for malformed ones.
func parsePragmas(pkg *Package) (pragmaIndex, []Diagnostic) {
	idx := pragmaIndex{}
	var diags []Diagnostic
	report := func(rule string, c *ast.Comment, msg string) {
		diags = append(diags, Diagnostic{Rule: rule, Pos: pkg.Fset.Position(c.Pos()), Message: msg})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, pragmaPrefix) {
					continue
				}
				rest := c.Text[len(pragmaPrefix):]
				name, args := rest, ""
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					name, args = rest[:i], strings.TrimSpace(rest[i+1:])
				}
				var rule string
				switch name {
				case "hotpath":
					continue // marker, not a suppression; read by the hotpath rule
				case "nocancel":
					rule = "guard.cancel"
				case "noguard":
					rule = "guard.entry"
				case "noctx":
					rule = "ctxflow"
				case "allow":
					fields := strings.Fields(args)
					if len(fields) < 2 {
						report("pragma.reason", c, "kdlint:allow needs a rule category and a reason: //kdlint:allow <rule> <why this is safe>")
						continue
					}
					rule = fields[0]
					args = strings.TrimSpace(args[strings.Index(args, fields[0])+len(fields[0]):])
				default:
					report("pragma.unknown", c, "unknown kdlint directive "+strconv.Quote(name)+"; known: nocancel, noguard, noctx, allow, hotpath")
					continue
				}
				if args == "" {
					report("pragma.reason", c, "kdlint:"+name+" suppresses "+rule+" but gives no reason; append why this site is safe")
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if idx[pos.Filename] == nil {
					idx[pos.Filename] = map[int][]suppression{}
				}
				idx[pos.Filename][pos.Line] = append(idx[pos.Filename][pos.Line], suppression{rule: rule})
			}
		}
	}
	return idx, diags
}

// HotpathMarked reports whether fn's doc comment carries the
// //kdlint:hotpath marker. The hotpath rule audits allocation sites inside
// the loops of marked functions.
func HotpathMarked(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == "//kdlint:hotpath" || strings.HasPrefix(c.Text, pragmaPrefix+"hotpath ") {
			return true
		}
	}
	return false
}
