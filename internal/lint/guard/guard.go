// Package guard checks the two call-site disciplines that PR 4's guarded
// builds depend on:
//
//	guard.cancel — every dispatch into the parallel substrate must thread a
//	               *parallel.Canceler. Calling a plain (non-Cancel) variant,
//	               or passing a literal nil to a Cancel variant, creates an
//	               uninterruptible stretch: a guarded build's deadline or
//	               memory abort cannot fire until that dispatch drains.
//	               Pool.Spawn has no Cancel variant, so every Spawn site
//	               must state (via //kdlint:nocancel) how its task observes
//	               cancellation.
//	guard.entry  — external code must enter tree construction through
//	               Builder.BuildGuarded, which converts worker panics,
//	               deadline and memory violations into a *BuildAborted
//	               instead of a crash or a runaway build.
//
// The runtime half of guard.cancel is the -tags parallelcheck assertion
// that a threaded Canceler is consulted at least once per dispatched chunk;
// the static rule guarantees a Canceler reaches the dispatch, the runtime
// check guarantees the substrate polls it.
package guard

import (
	"go/ast"

	"kdtune/internal/lint"
)

// Rule returns the guard rule.
func Rule() lint.Rule {
	return lint.Rule{
		Name:  "guard",
		Doc:   "require Canceler threading at parallel dispatch sites and BuildGuarded at external build entries",
		Check: check,
	}
}

// plainDispatch maps each parallel dispatch function without a cancellation
// parameter to its Cancel variant ("" when none exists).
var plainDispatch = map[string]string{
	"For":           "ForCancel",
	"ForGrain":      "ForGrainCancel",
	"ForChunks":     "ForChunksCancel",
	"ForEach":       "",
	"ExclusiveScan": "ExclusiveScanCancel",
	"Reduce":        "ReduceCancel",
	"SortFunc":      "SortFuncCancel",
}

// cancelDispatch is the set of dispatch functions whose first parameter is
// the *Canceler; passing literal nil defeats the discipline.
var cancelDispatch = map[string]bool{
	"ForCancel":           true,
	"ForGrainCancel":      true,
	"ForChunksCancel":     true,
	"ExclusiveScanCancel": true,
	"ReduceCancel":        true,
	"SortFuncCancel":      true,
}

func check(p *lint.Pass) {
	info := p.Pkg.Info
	callerPkg := p.Pkg.PkgPath()
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.Callee(info, call)
			if fn == nil {
				return true
			}
			pkg, recv, name := lint.FuncPkgPath(fn), lint.RecvTypeName(fn), fn.Name()

			// guard.cancel: dispatches into the parallel substrate. The
			// substrate's own internals are the allowlisted implementation.
			if pkg == p.Cfg.ParallelPackage && !p.IsParallelPackage() {
				switch {
				case recv == "" && plainDispatch[name] != "":
					p.Reportf("guard.cancel", call.Pos(),
						"parallel.%s dispatches without a cancellation point: use parallel.%s and thread the build's Canceler, or suppress with //kdlint:nocancel <why this cannot block an abort>",
						name, plainDispatch[name])
				case recv == "":
					if _, isPlain := plainDispatch[name]; isPlain {
						// A dispatch with no Cancel variant (ForEach): the
						// site must justify itself.
						p.Reportf("guard.cancel", call.Pos(),
							"parallel.%s has no Cancel variant: restructure onto a cancelable primitive, or suppress with //kdlint:nocancel <why this cannot block an abort>", name)
					} else if cancelDispatch[name] && len(call.Args) > 0 && lint.IsNilIdent(info, call.Args[0]) {
						p.Reportf("guard.cancel", call.Pos(),
							"parallel.%s threads a nil Canceler, which disables cancellation: pass the build's Canceler, or call parallel.%s under //kdlint:nocancel <reason>",
							name, name[:len(name)-len("Cancel")])
					}
				case recv == "Pool" && name == "Spawn":
					p.Reportf("guard.cancel", call.Pos(),
						"Pool.Spawn has no cancellation parameter: the spawned task must poll a Canceler itself; state how with //kdlint:nocancel <reason>")
				}
			}

			// guard.entry: raw build entries called from outside their
			// declaring package.
			if pkg != "" && pkg != callerPkg {
				key := pkg + "." + name
				if recv != "" {
					key = pkg + "." + recv + "." + name
				}
				if inEntries(key, p.Cfg.RawBuildEntries) {
					p.Reportf("guard.entry", call.Pos(),
						"unguarded build entry %s: external callers must use Builder.%s (panic containment, deadline, memory ceiling), or suppress with //kdlint:noguard <why an unguarded build is safe here>",
						key, p.Cfg.GuardedEntry)
				}
			}
			return true
		})
	}
}

func inEntries(key string, entries []string) bool {
	for _, e := range entries {
		if e == key {
			return true
		}
	}
	return false
}
