// Package lint implements kdlint, the repository's static-analysis driver.
//
// kdlint encodes the invariants this codebase's correctness arguments lean
// on — deterministic tree construction, guarded entry into builds,
// cancellation threading through every parallel dispatch, arena alias
// hygiene, and allocation-free hot paths — as mechanical checks over the
// typed AST. The driver is built from the standard library only
// (go/parser, go/ast, go/types, go/importer); there is no dependency on
// golang.org/x/tools.
//
// Each invariant lives in its own rule package under internal/lint/
// (determinism, guard, arena, hotpath); this package provides the shared
// machinery: the package loader, the diagnostic and suppression engine, and
// the configuration that scopes rules to the packages whose contracts they
// police.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one rule finding at one source position.
type Diagnostic struct {
	// Rule is the dotted rule category, e.g. "guard.cancel" or
	// "determinism.maprange". The prefix before the first dot names the
	// rule package that produced it.
	Rule    string
	Pos     token.Position
	Message string
}

// String renders the diagnostic in the conventional file:line:col form used
// by go vet, with the rule category appended so a finding can be traced to
// (or suppressed for) its rule.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Rule)
}

// Rule is one named invariant check. Check inspects a single type-checked
// package and reports findings through the pass; it must not retain the
// pass.
type Rule struct {
	Name  string // rule family name, e.g. "guard"
	Doc   string // one-line description for -help output
	Check func(*Pass)
}

// Pass is the per-(package, rule) context handed to Rule.Check.
type Pass struct {
	Pkg    *Package
	Cfg    *Config
	report func(Diagnostic)
}

// Reportf records a finding in category rule at pos.
func (p *Pass) Reportf(rule string, pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Rule:    rule,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Config scopes the rules to the packages whose invariants they police.
// Paths are full import paths. The zero value disables everything; use
// DefaultConfig for the repository's real layout. Fixture tests substitute
// their own package paths so every rule is exercised end to end against
// real type information.
type Config struct {
	// ParallelPackage is the fork-join substrate; its exported dispatch
	// functions define the call sites the guard rule audits. The package
	// itself is exempt from guard.cancel and determinism.goroutine — it is
	// the allowlisted implementation the invariants are defined against.
	ParallelPackage string

	// KDTreePackage hosts the Builder whose BuildGuarded entry point the
	// guard.entry rule enforces.
	KDTreePackage string

	// RawBuildEntries are the functions and methods that start an
	// unguarded build, qualified as "<pkgpath>.<Func>" or
	// "<pkgpath>.<Type>.<Method>". Calls from outside the declaring
	// package must use GuardedEntry instead or carry a //kdlint:noguard
	// pragma.
	RawBuildEntries []string

	// GuardedEntry is the sanctioned external entry point (BuildGuarded).
	GuardedEntry string

	// DeterminismPackages are the packages whose outputs must be
	// bit-identical across runs and worker counts; determinism.* rules
	// apply inside them.
	DeterminismPackages []string

	// GoroutineAllowlist are packages allowed to use raw go statements
	// even when listed in DeterminismPackages (the parallel substrate).
	GoroutineAllowlist []string

	// ArenaPackages are packages using pooled build arenas; arena.* rules
	// apply inside them.
	ArenaPackages []string

	// ArenaTypes are the (unexported, package-local) type names whose
	// fields are pooled storage, e.g. "arena". A slice or pointer derived
	// from a field of such a type must not cross the package's public
	// surface.
	ArenaTypes []string

	// SAHPackage hosts the binned SAH split search whose bins and grain
	// arguments the tunable rule audits.
	SAHPackage string

	// TunablePackages are the packages whose parallel-dispatch grains and
	// SAH bin counts must flow from the tunable registry (or its named
	// defaults) rather than inline literals; tunable.* rules apply inside
	// them. The parallel substrate itself is exempt.
	TunablePackages []string

	// IncludeTests selects whether _test.go files are loaded and linted.
	IncludeTests bool

	// --- dataflow rules (ctxflow, atomics, locks, resource) ---

	// CtxFlowPackages are the request-serving packages whose blocking
	// operations must be dominated by the request context; ctxflow.* rules
	// apply inside them.
	CtxFlowPackages []string

	// CtxGuardFunc derives a build Guard from a context, as
	// "<pkgpath>.<Func>". GuardedEntry calls inside CtxFlowPackages must
	// thread a guard produced by it.
	CtxGuardFunc string

	// CtxLinkFunc links a Canceler to a context, as "<pkgpath>.<Func>".
	// A Canceler handed to a dispatch inside CtxFlowPackages must first
	// flow through it (or arrive as a parameter, linked by the caller).
	CtxLinkFunc string

	// CancelerType is the cooperative-cancellation flag type the parallel
	// substrate polls, as "<pkgpath>.<Type>".
	CancelerType string

	// BlockingFuncs are calls the ctxflow and locks rules treat as
	// potentially blocking, as "<pkgpath>.<Func>" or
	// "<pkgpath>.<Type>.<Method>", beyond the built-in channel, select
	// and sync cases.
	BlockingFuncs []string

	// AtomicsPackages are the packages subject to atomics.* rules: a
	// field accessed through sync/atomic anywhere must be accessed
	// atomically everywhere.
	AtomicsPackages []string

	// LocksPackages are the packages subject to locks.* rules: no
	// blocking operation while a mutex is held, and only declared lock
	// nesting.
	LocksPackages []string

	// LockOrder declares the sanctioned mutex nesting as "outer<inner"
	// pairs of lock classes ("<pkgpath>.<Type>.<field>"). Nesting
	// observed in the code but not declared here — in either direction —
	// is a locks.order finding.
	LockOrder []string

	// LockMethods maps callee keys to the lock class the callee acquires
	// (and releases) internally, so nesting through accessor methods is
	// visible without interprocedural analysis.
	LockMethods map[string]string

	// ResourcePackages are the packages subject to resource.* rules.
	ResourcePackages []string

	// Resources are the acquire/release protocols the resource rule
	// enforces inside ResourcePackages.
	Resources []ResourceSpec

	// Latches are the latch types whose publish obligation the resource
	// rule enforces inside ResourcePackages.
	Latches []LatchSpec
}

// ResourceSpec is one acquire/release protocol: a value bound from an
// Acquire call must, on every path out of the binding function — panic
// edges included — reach a Release call, be handed off per the consume
// flags, or be waived by an error-result check on the acquiring call.
type ResourceSpec struct {
	Name    string   // short name used in messages, e.g. "Builder"
	Acquire []string // callee keys whose bound results create the obligation
	Release []string // callee keys that discharge it (value as receiver or argument)

	// ConsumeOnStore discharges the obligation when the value is stored
	// into a composite literal or struct field, or returned — ownership
	// transferred to another holder.
	ConsumeOnStore bool

	// ConsumeOnCall discharges the obligation when the value is passed
	// as an argument to any call — ownership transferred to the callee.
	ConsumeOnCall bool
}

// LatchSpec is one latch protocol: binding a composite literal of Type
// obliges the function to publish the latch on every path out — by
// closing one of its channel fields, calling one of the Fill callees on
// it, or handing it to the callee that will (any call argument).
type LatchSpec struct {
	Type string   // latch type, as "<pkgpath>.<Type>"
	Fill []string // callee keys that publish the latch
}

// DefaultConfig returns the scoping for this repository.
func DefaultConfig() *Config {
	return &Config{
		ParallelPackage: "kdtune/internal/parallel",
		KDTreePackage:   "kdtune/internal/kdtree",
		RawBuildEntries: []string{
			"kdtune/internal/kdtree.Build",
			"kdtune/internal/kdtree.Builder.Build",
			"kdtune.Build",
		},
		GuardedEntry: "BuildGuarded",
		DeterminismPackages: []string{
			"kdtune/internal/kdtree",
			"kdtune/internal/sah",
			"kdtune/internal/parallel",
		},
		GoroutineAllowlist: []string{"kdtune/internal/parallel"},
		ArenaPackages:      []string{"kdtune/internal/kdtree"},
		ArenaTypes:         []string{"arena"},
		SAHPackage:         "kdtune/internal/sah",
		TunablePackages: []string{
			"kdtune/internal/kdtree",
			"kdtune/internal/sah",
		},
		CtxFlowPackages: []string{"kdtune/internal/serve"},
		CtxGuardFunc:    "kdtune/internal/kdtree.GuardFromContext",
		CtxLinkFunc:     "kdtune/internal/parallel.LinkContext",
		CancelerType:    "kdtune/internal/parallel.Canceler",
		BlockingFuncs: []string{
			"kdtune/internal/kdtree.Builder.BuildGuarded",
			"kdtune/internal/render.RenderInto",
			"kdtune/internal/parallel.For",
			"kdtune/internal/parallel.ForCancel",
			"kdtune/internal/parallel.ForGrain",
			"kdtune/internal/parallel.ForGrainCancel",
			"kdtune/internal/parallel.ForChunks",
			"kdtune/internal/parallel.ForChunksCancel",
			"kdtune/internal/parallel.ForEach",
			"kdtune/internal/parallel.Pool.Wait",
		},
		AtomicsPackages: []string{
			"kdtune/internal/serve",
			"kdtune/internal/parallel",
			"kdtune/internal/harness",
		},
		LocksPackages: []string{
			"kdtune/internal/serve",
			"kdtune/internal/parallel",
			"kdtune/internal/harness",
		},
		LockOrder: []string{
			"kdtune/internal/serve.cacheEntry.mu<kdtune/internal/serve.CachedTree.mu",
			"kdtune/internal/serve.admission.mu<kdtune/internal/serve.Breaker.mu",
		},
		LockMethods: map[string]string{
			"kdtune/internal/serve.CachedTree.acquire":   "kdtune/internal/serve.CachedTree.mu",
			"kdtune/internal/serve.CachedTree.Release":   "kdtune/internal/serve.CachedTree.mu",
			"kdtune/internal/serve.CachedTree.retire":    "kdtune/internal/serve.CachedTree.mu",
			"kdtune/internal/serve.Breaker.Allow":        "kdtune/internal/serve.Breaker.mu",
			"kdtune/internal/serve.Breaker.CancelProbe":  "kdtune/internal/serve.Breaker.mu",
			"kdtune/internal/serve.Breaker.Record":       "kdtune/internal/serve.Breaker.mu",
			"kdtune/internal/serve.Breaker.State":        "kdtune/internal/serve.Breaker.mu",
			"kdtune/internal/serve.BuilderPool.Get":      "kdtune/internal/serve.poolShard.mu",
			"kdtune/internal/serve.BuilderPool.Put":      "kdtune/internal/serve.poolShard.mu",
			"kdtune/internal/serve.BuilderPool.Size":     "kdtune/internal/serve.poolShard.mu",
			"kdtune/internal/serve.treeCache.entry":      "kdtune/internal/serve.treeCache.mu",
			"kdtune/internal/serve.treeCache.Invalidate": "kdtune/internal/serve.cacheEntry.mu",
			"kdtune/internal/serve.treeCache.Generation": "kdtune/internal/serve.cacheEntry.mu",
		},
		ResourcePackages: []string{"kdtune/internal/serve"},
		Resources: []ResourceSpec{
			{
				Name:           "Builder",
				Acquire:        []string{"kdtune/internal/serve.BuilderPool.Get"},
				Release:        []string{"kdtune/internal/serve.BuilderPool.Put"},
				ConsumeOnStore: true,
			},
			{
				Name: "CachedTree",
				Acquire: []string{
					"kdtune/internal/serve.CachedTree.acquire",
					"kdtune/internal/serve.treeCache.Get",
					"kdtune/internal/serve.treeCache.fill",
					"kdtune/internal/serve.treeCache.ladder",
					"kdtune/internal/serve.treeCache.fallbackFill",
					"kdtune/internal/serve.Server.tree",
				},
				Release: []string{
					"kdtune/internal/serve.CachedTree.Release",
					"kdtune/internal/serve.CachedTree.retire",
				},
				ConsumeOnStore: true,
			},
		},
		Latches: []LatchSpec{
			{Type: "kdtune/internal/serve.fillState"},
		},
	}
}

// inList reports whether path is one of the listed package paths.
func inList(path string, list []string) bool {
	for _, p := range list {
		if p == path {
			return true
		}
	}
	return false
}

// InDeterminismScope reports whether the pass's package is subject to
// determinism.* rules.
func (p *Pass) InDeterminismScope() bool {
	return inList(p.Pkg.PkgPath(), p.Cfg.DeterminismPackages)
}

// InArenaScope reports whether the pass's package is subject to arena.*
// rules.
func (p *Pass) InArenaScope() bool {
	return inList(p.Pkg.PkgPath(), p.Cfg.ArenaPackages)
}

// InTunableScope reports whether the pass's package is subject to
// tunable.* rules.
func (p *Pass) InTunableScope() bool {
	return inList(p.Pkg.PkgPath(), p.Cfg.TunablePackages)
}

// InCtxFlowScope reports whether the pass's package is subject to
// ctxflow.* rules.
func (p *Pass) InCtxFlowScope() bool {
	return inList(p.Pkg.PkgPath(), p.Cfg.CtxFlowPackages)
}

// InAtomicsScope reports whether the pass's package is subject to
// atomics.* rules.
func (p *Pass) InAtomicsScope() bool {
	return inList(p.Pkg.PkgPath(), p.Cfg.AtomicsPackages)
}

// InLocksScope reports whether the pass's package is subject to locks.*
// rules.
func (p *Pass) InLocksScope() bool {
	return inList(p.Pkg.PkgPath(), p.Cfg.LocksPackages)
}

// InResourceScope reports whether the pass's package is subject to
// resource.* rules.
func (p *Pass) InResourceScope() bool {
	return inList(p.Pkg.PkgPath(), p.Cfg.ResourcePackages)
}

// GoroutinesAllowed reports whether raw go statements are allowlisted in
// the pass's package (the parallel substrate itself).
func (p *Pass) GoroutinesAllowed() bool {
	return inList(p.Pkg.PkgPath(), p.Cfg.GoroutineAllowlist)
}

// IsParallelPackage reports whether the pass's package is the fork-join
// substrate itself, which is exempt from the call-site rules defined in
// terms of it.
func (p *Pass) IsParallelPackage() bool {
	return p.Pkg.PkgPath() == p.Cfg.ParallelPackage
}

// Run applies every rule to every package, layers in the pragma
// diagnostics, filters suppressed findings, and returns the rest sorted by
// position. It is the single entry point used by cmd/kdlint and the fixture
// harness, so suppression semantics cannot diverge between them.
func Run(pkgs []*Package, cfg *Config, rules []Rule) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		pragmas, pragmaDiags := parsePragmas(pkg)
		diags = append(diags, pragmaDiags...)

		var raw []Diagnostic
		pass := &Pass{Pkg: pkg, Cfg: cfg, report: func(d Diagnostic) { raw = append(raw, d) }}
		for _, r := range rules {
			r.Check(pass)
		}
		for _, d := range raw {
			if !pragmas.suppresses(d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}
