// Package hotpath checks that functions marked //kdlint:hotpath — the
// traversal and intersection kernels whose per-ray cost the autotuner's
// cost model measures — do not allocate inside their loops. The runtime
// half of this contract is the testing.AllocsPerRun zero-alloc tests; the
// static rule catches the allocation site at review time and names it,
// instead of failing a counter after the fact.
//
// One category, hotpath.alloc, flags AST-level allocation sites inside any
// loop of a marked function: make, new, append (may grow its backing
// array), slice/map composite literals, address-taken composite literals,
// and closure literals. Sites that are provably amortized (an append into a
// caller-provided buffer that reaches steady-state capacity) are suppressed
// in place with //kdlint:allow hotpath.alloc and a reason, keeping the
// amortization argument next to the code it justifies.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"kdtune/internal/lint"
)

// Rule returns the hotpath rule.
func Rule() lint.Rule {
	return lint.Rule{
		Name:  "hotpath",
		Doc:   "flag allocation sites inside loops of //kdlint:hotpath functions",
		Check: check,
	}
}

func check(p *lint.Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !lint.HotpathMarked(fd) {
				continue
			}
			checkFunc(p, fd)
		}
	}
}

// checkFunc walks fd's body tracking loop depth and reports allocation
// sites at depth >= 1.
func checkFunc(p *lint.Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	name := fd.Name.Name
	depth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
			switch s := n.(type) {
			case *ast.ForStmt:
				walkAll(s.Body, walk)
			case *ast.RangeStmt:
				walkAll(s.Body, walk)
			}
			depth--
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && depth > 0 {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "new":
						p.Reportf("hotpath.alloc", n.Pos(),
							"%s allocates inside a loop of hot path %s: hoist the allocation out of the loop or into a reused buffer", b.Name(), name)
					case "append":
						p.Reportf("hotpath.alloc", n.Pos(),
							"append may grow its backing array inside a loop of hot path %s: preallocate capacity, or suppress with //kdlint:allow hotpath.alloc <amortization argument>", name)
					}
				}
			}
		case *ast.UnaryExpr:
			if depth > 0 && n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					p.Reportf("hotpath.alloc", n.Pos(),
						"address-taken composite literal allocates inside a loop of hot path %s: reuse a preallocated value", name)
					return false // don't double-report the literal itself
				}
			}
		case *ast.CompositeLit:
			if depth > 0 && compositeAllocates(info, n) {
				p.Reportf("hotpath.alloc", n.Pos(),
					"composite literal allocates inside a loop of hot path %s: reuse a preallocated value", name)
			}
		case *ast.FuncLit:
			if depth > 0 {
				p.Reportf("hotpath.alloc", n.Pos(),
					"closure literal allocates inside a loop of hot path %s: hoist it out of the loop", name)
			}
			return false // its own body is not this function's hot loop
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// walkAll continues the depth-tracking walk inside a loop body.
func walkAll(body *ast.BlockStmt, walk func(ast.Node) bool) {
	if body != nil {
		ast.Inspect(body, walk)
	}
}

// compositeAllocates reports whether lit heap-allocates by construction: a
// slice or map literal always does. Value struct and array literals are
// copies, not allocations; the address-taken case (&T{...}) is reported by
// the UnaryExpr check above.
func compositeAllocates(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[ast.Expr(lit)]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}
