// Package faultinject is a deterministic fault-injection layer for the
// build/tune loop. Tests register an immutable plan of faults (forced panic
// in a given chunk, an artificially slow chunk, arena-pressure inflation)
// and the instrumented hot paths probe it at well-defined sites. When no
// plan is active a probe is a single atomic load, so production builds pay
// one predictable branch per site.
//
// The package is a leaf: it imports nothing from this repository, so any
// package (including internal/parallel) can carry probes without cycles.
package faultinject

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Site identifies an instrumented probe point.
type Site uint8

const (
	// SiteParallelChunk fires in a parallel.ForChunks worker before the
	// chunk body runs; the probe index is the chunk id.
	SiteParallelChunk Site = iota
	// SitePoolTask fires on the dispatching goroutine at every
	// parallel.Pool.Spawn (goroutine and inline paths alike); the probe
	// index is the dispatch ordinal within the pool's lifetime.
	SitePoolTask
	// SiteBuildNode fires at every kd-tree node boundary (the builders'
	// abort check); the probe index is the visit ordinal within the build.
	SiteBuildNode
	// SiteBuildLeaf fires when a builder materialises a leaf; the probe
	// index is the leaf ordinal within the build.
	SiteBuildLeaf
	// SiteArena is consulted by the guarded memory accounting: KindInflate
	// faults at this site add phantom bytes to the live-arena figure.
	SiteArena
	// SiteRenderTile fires in the render workers before each unit of image
	// work — one probe per tile on the packet path, one per pixel row on
	// the scalar path; the probe index is the tile (or row) index.
	SiteRenderTile
	// SitePacketDemote fires when packet traversal demotes a lane to the
	// scalar continuation; the probe index is the demoted lane.
	SitePacketDemote
	// SiteServeHandler fires at the top of every kdserve request handler;
	// the probe index is the server-lifetime request ordinal.
	SiteServeHandler
	// SiteServeQueue fires when an admitted request starts waiting for a
	// work slot; the probe index is the admission ordinal. Delays here
	// hold queue occupancy open and drive queue-full shedding.
	SiteServeQueue
	// SiteServeCache fires inside the tree cache on every fill or
	// generation check; the probe index is the fill ordinal. Delays here
	// widen the build/invalidate race window.
	SiteServeCache
	numSites
)

func (s Site) String() string {
	switch s {
	case SiteParallelChunk:
		return "parallel-chunk"
	case SitePoolTask:
		return "pool-task"
	case SiteBuildNode:
		return "build-node"
	case SiteBuildLeaf:
		return "build-leaf"
	case SiteArena:
		return "arena"
	case SiteRenderTile:
		return "render-tile"
	case SitePacketDemote:
		return "packet-demote"
	case SiteServeHandler:
		return "serve-handler"
	case SiteServeQueue:
		return "serve-queue"
	case SiteServeCache:
		return "serve-cache"
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// Kind selects what a fault does when its site and index match.
type Kind uint8

const (
	// KindPanic panics with an *Injected sentinel carrying the fault.
	KindPanic Kind = iota
	// KindDelay sleeps for Fault.Delay, simulating a slow chunk or node.
	KindDelay
	// KindInflate adds Fault.Bytes of phantom memory pressure (SiteArena).
	KindInflate
)

// Fault is one entry of an injection plan.
type Fault struct {
	Site  Site
	Index int // probe index to match; -1 matches any index
	Kind  Kind
	Delay time.Duration // KindDelay: how long to stall
	Bytes int64         // KindInflate: phantom bytes to add
	Count int           // max times to trigger; 0 means unlimited

	// Every, when positive, switches Index from exact matching to periodic
	// matching: the fault fires at probe indices congruent to Index modulo
	// Every. Soak drills use it to fault "every Nth request" instead of a
	// single ordinal; Count still bounds the total damage.
	Every int
}

// Injected is the panic value of a KindPanic fault. It satisfies error so
// parallel.WorkerPanic.Unwrap and errors.As can identify injected faults in
// tests.
type Injected struct{ Fault Fault }

func (e *Injected) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %v index %d", e.Fault.Site, e.Fault.Index)
}

// Injector is an active injection plan. The fault list is immutable after
// Activate; only the per-fault hit counters mutate.
type Injector struct {
	faults []Fault
	hits   []atomic.Int64
}

// active is the package-global plan. Nil (the overwhelmingly common state)
// costs probes a single atomic pointer load.
var active atomic.Pointer[Injector]

// Activate installs a plan built from the given faults, replacing any
// previous plan, and returns it for hit inspection and Deactivate. Intended
// for tests; concurrent Activate calls race benignly (last wins).
func Activate(faults ...Fault) *Injector {
	in := &Injector{faults: faults, hits: make([]atomic.Int64, len(faults))}
	active.Store(in)
	return in
}

// Deactivate removes the plan if it is still the active one.
func (in *Injector) Deactivate() {
	active.CompareAndSwap(in, nil)
}

// Hits reports how many times fault i has triggered.
func (in *Injector) Hits(i int) int64 {
	if in == nil || i < 0 || i >= len(in.hits) {
		return 0
	}
	return in.hits[i].Load()
}

// TotalHits sums trigger counts across all faults in the plan.
func (in *Injector) TotalHits() int64 {
	var t int64
	for i := range in.hits {
		t += in.hits[i].Load()
	}
	return t
}

// match reports whether fault f applies to (site, idx) and, if it has a
// trigger budget, consumes one unit of it.
func (in *Injector) match(i int, site Site, idx int) bool {
	f := &in.faults[i]
	if f.Site != site {
		return false
	}
	if f.Every > 0 {
		if idx < 0 || idx%f.Every != ((f.Index%f.Every)+f.Every)%f.Every {
			return false
		}
	} else if f.Index >= 0 && f.Index != idx {
		return false
	}
	n := in.hits[i].Add(1)
	if f.Count > 0 && n > int64(f.Count) {
		return false
	}
	return true
}

// Active reports whether an injection plan is installed — the cheapest
// possible pre-check for probes that would otherwise pay to compute their
// ordinal index.
func Active() bool { return active.Load() != nil }

// Check probes (site, idx) against the active plan: KindDelay faults sleep,
// KindPanic faults panic with *Injected. Inactive plans cost one atomic
// load.
func Check(site Site, idx int) {
	in := active.Load()
	if in == nil {
		return
	}
	for i := range in.faults {
		f := &in.faults[i]
		if f.Kind == KindInflate || !in.match(i, site, idx) {
			continue
		}
		switch f.Kind {
		case KindDelay:
			time.Sleep(f.Delay)
		case KindPanic:
			panic(&Injected{Fault: *f})
		}
	}
}

// ExtraBytes returns the phantom memory pressure KindInflate faults add at
// the given site (consuming trigger budget like Check does).
func ExtraBytes(site Site) int64 {
	in := active.Load()
	if in == nil {
		return 0
	}
	var extra int64
	for i := range in.faults {
		f := &in.faults[i]
		if f.Kind != KindInflate || !in.match(i, site, -1) {
			continue
		}
		extra += f.Bytes
	}
	return extra
}
