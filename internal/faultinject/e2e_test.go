// End-to-end fault drills: inject panics, stalls and phantom memory pressure
// into live builds and assert the guarded pipeline turns every one of them
// into a typed abort, a rendered fallback frame, and an untouched Builder.
// The external test package lets these tests import kdtree and harness (both
// of which import faultinject).
package faultinject_test

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"kdtune/internal/faultinject"
	"kdtune/internal/harness"
	"kdtune/internal/kdtree"
	"kdtune/internal/scene"
	"kdtune/internal/vecmath"
)

var allAlgorithms = []kdtree.Algorithm{
	kdtree.AlgoNodeLevel, kdtree.AlgoNested, kdtree.AlgoInPlace,
	kdtree.AlgoLazy, kdtree.AlgoMedian, kdtree.AlgoSortOnce,
}

func e2eTriangles(n int) []vecmath.Triangle {
	r := rand.New(rand.NewSource(4242))
	tris := make([]vecmath.Triangle, n)
	for i := range tris {
		c := vecmath.V(r.Float64()*10, r.Float64()*10, r.Float64()*10)
		tris[i] = vecmath.Tri(
			c.Add(vecmath.V(r.NormFloat64()*0.2, r.NormFloat64()*0.2, r.NormFloat64()*0.2)),
			c.Add(vecmath.V(r.NormFloat64()*0.2, r.NormFloat64()*0.2, r.NormFloat64()*0.2)),
			c.Add(vecmath.V(r.NormFloat64()*0.2, r.NormFloat64()*0.2, r.NormFloat64()*0.2)),
		)
	}
	return tris
}

func e2eConfig(a kdtree.Algorithm) kdtree.Config {
	c := kdtree.BaseConfig(a)
	c.Workers = 4
	c.R = 32
	return c
}

func serialize(t *testing.T, tree *kdtree.Tree) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tree.Serialize(&buf); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return buf.Bytes()
}

// wantAbort asserts err is a *BuildAborted with the given cause.
func wantAbort(t *testing.T, err error, cause kdtree.AbortCause) *kdtree.BuildAborted {
	t.Helper()
	if err == nil {
		t.Fatalf("build did not abort")
	}
	var ba *kdtree.BuildAborted
	if !errors.As(err, &ba) {
		t.Fatalf("error is %T (%v), want *BuildAborted", err, err)
	}
	if ba.Cause != cause {
		t.Fatalf("abort cause %v, want %v (err: %v)", ba.Cause, cause, err)
	}
	return ba
}

// drillPanic injects a one-shot panic fault, asserts the guarded build turns
// it into AbortWorkerPanic carrying the *Injected sentinel, and that the same
// Builder then rebuilds bitwise-identically to a fresh one.
func drillPanic(t *testing.T, cfg kdtree.Config, tris []vecmath.Triangle, f faultinject.Fault) {
	t.Helper()
	a := cfg.Algorithm
	fresh := serialize(t, kdtree.NewBuilder().Build(tris, cfg))

	b := kdtree.NewBuilder()
	in := faultinject.Activate(f)
	tree, err := b.BuildGuarded(tris, cfg, kdtree.Guard{})
	in.Deactivate()
	if hits := in.TotalHits(); hits == 0 {
		t.Fatalf("%v/%v: fault never fired — site not probed by this builder", a, f.Site)
	}
	if tree != nil {
		t.Fatalf("%v/%v: aborted build returned a tree", a, f.Site)
	}
	ba := wantAbort(t, err, kdtree.AbortWorkerPanic)
	var inj *faultinject.Injected
	if !errors.As(ba, &inj) {
		t.Fatalf("%v/%v: abort does not unwrap to *Injected: %v", a, f.Site, err)
	}
	if inj.Fault.Site != f.Site {
		t.Errorf("%v: Injected carries site %v, want %v", a, inj.Fault.Site, f.Site)
	}

	rebuilt := b.Build(tris, cfg)
	if err := rebuilt.Validate(); err != nil {
		t.Fatalf("%v/%v: post-abort tree invalid: %v", a, f.Site, err)
	}
	if !bytes.Equal(fresh, serialize(t, rebuilt)) {
		t.Errorf("%v/%v: post-panic rebuild differs from fresh build", a, f.Site)
	}
}

// TestPanicAtBuildSites: the node and leaf probes are on every builder's
// spine, so a panic there exercises panic containment in all six algorithms.
func TestPanicAtBuildSites(t *testing.T) {
	tris := e2eTriangles(3000)
	for _, a := range allAlgorithms {
		for _, site := range []faultinject.Site{faultinject.SiteBuildNode, faultinject.SiteBuildLeaf} {
			cfg := e2eConfig(a)
			if a == kdtree.AlgoLazy && site == faultinject.SiteBuildLeaf {
				// The lazy builder defers every small subtree instead of
				// materialising leaves; R=2 disables deferral so the leaf
				// probe is actually on its path.
				cfg.R = 2
			}
			drillPanic(t, cfg, tris, faultinject.Fault{
				Site: site, Index: -1, Kind: faultinject.KindPanic, Count: 1,
			})
		}
	}
}

// TestPanicInParallelChunk: a panic inside a ForChunks worker body (the
// nested partition loops, the in-place frontier scatter) must be contained.
func TestPanicInParallelChunk(t *testing.T) {
	tris := e2eTriangles(6000) // above nestedSequentialCutoff so chunks dispatch
	for _, a := range []kdtree.Algorithm{kdtree.AlgoNested, kdtree.AlgoInPlace, kdtree.AlgoLazy} {
		drillPanic(t, e2eConfig(a), tris, faultinject.Fault{
			Site: faultinject.SiteParallelChunk, Index: -1, Kind: faultinject.KindPanic, Count: 1,
		})
	}
}

// TestPanicInPoolTask: a panic on a pool worker goroutine (a spawned subtree
// task) arrives through the pool's panic handler, not a process crash.
func TestPanicInPoolTask(t *testing.T) {
	tris := e2eTriangles(6000)
	for _, a := range []kdtree.Algorithm{kdtree.AlgoNodeLevel, kdtree.AlgoMedian, kdtree.AlgoSortOnce} {
		drillPanic(t, e2eConfig(a), tris, faultinject.Fault{
			Site: faultinject.SitePoolTask, Index: -1, Kind: faultinject.KindPanic, Count: 1,
		})
	}
}

// TestDelayTriggersDeadline: a stalled node (KindDelay) plus a Guard deadline
// must produce AbortDeadline — the watchdog path, deterministically.
func TestDelayTriggersDeadline(t *testing.T) {
	tris := e2eTriangles(3000)
	for _, a := range allAlgorithms {
		b := kdtree.NewBuilder()
		in := faultinject.Activate(faultinject.Fault{
			Site: faultinject.SiteBuildNode, Index: -1, Kind: faultinject.KindDelay,
			Delay: 50 * time.Millisecond, Count: 1,
		})
		_, err := b.BuildGuarded(tris, e2eConfig(a), kdtree.Guard{Deadline: 5 * time.Millisecond})
		in.Deactivate()
		wantAbort(t, err, kdtree.AbortDeadline)

		tree := b.Build(tris, e2eConfig(a))
		if err := tree.Validate(); err != nil {
			t.Fatalf("%v: post-deadline rebuild invalid: %v", a, err)
		}
	}
}

// TestInflateTriggersMemoryAbort: phantom arena pressure (KindInflate) must
// trip MaxArenaBytes without any real allocation.
func TestInflateTriggersMemoryAbort(t *testing.T) {
	tris := e2eTriangles(3000)
	for _, a := range allAlgorithms {
		b := kdtree.NewBuilder()
		in := faultinject.Activate(faultinject.Fault{
			Site: faultinject.SiteArena, Index: -1, Kind: faultinject.KindInflate, Bytes: 1 << 40,
		})
		_, err := b.BuildGuarded(tris, e2eConfig(a), kdtree.Guard{MaxArenaBytes: 1 << 20})
		in.Deactivate()
		wantAbort(t, err, kdtree.AbortMemory)

		tree := b.Build(tris, e2eConfig(a))
		if err := tree.Validate(); err != nil {
			t.Fatalf("%v: post-memory-abort rebuild invalid: %v", a, err)
		}
	}
}

// gridScene is a small static scene (288 triangles) for harness drills.
func gridScene() *scene.Scene {
	var tris []vecmath.Triangle
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			x, z := float64(i)*0.5, float64(j)*0.5
			y := 0.3 * math.Sin(x+z)
			tris = append(tris,
				vecmath.Tri(vecmath.V(x, y, z), vecmath.V(x+0.5, y, z), vecmath.V(x, y, z+0.5)),
				vecmath.Tri(vecmath.V(x+0.5, y, z), vecmath.V(x+0.5, y, z+0.5), vecmath.V(x, y, z+0.5)),
			)
		}
	}
	return scene.NewStatic("grid", tris, scene.View{
		Eye: vecmath.V(3, 4, -2), LookAt: vecmath.V(3, 0, 3), Up: vecmath.V(0, 1, 0), FOV: 60,
	}, []vecmath.Vec3{vecmath.V(3, 8, 3)})
}

// TestHarnessAbortFallbackRecover is the full loop drill: a worker panic in
// frame 0's build must yield one censored, fallback-rendered frame and leave
// the rest of the run untouched.
func TestHarnessAbortFallbackRecover(t *testing.T) {
	in := faultinject.Activate(faultinject.Fault{
		Site: faultinject.SiteBuildNode, Index: -1, Kind: faultinject.KindPanic, Count: 1,
	})
	defer in.Deactivate()
	res := harness.Run(harness.RunConfig{
		Scene: gridScene(), Algorithm: kdtree.AlgoInPlace,
		Search: harness.SearchNelderMead, Workers: 4,
		Width: 32, Height: 24, MaxIterations: 6, Seed: 7,
	})
	if res.AbortedBuilds != 1 || res.FallbackFrames != 1 {
		t.Fatalf("AbortedBuilds=%d FallbackFrames=%d, want 1/1", res.AbortedBuilds, res.FallbackFrames)
	}
	if len(res.Frames) != 6 {
		t.Fatalf("run recorded %d frames, want 6 — an abort must not shorten the run", len(res.Frames))
	}
	for i, f := range res.Frames {
		if want := i == 0; f.Aborted != want {
			t.Errorf("frame %d Aborted=%v, want %v", i, f.Aborted, want)
		}
		if f.Total <= 0 || f.Build <= 0 {
			t.Errorf("frame %d has non-positive timings: %+v", i, f)
		}
	}
}

// TestHarnessStaticDeadlineFallback: a stalled build against a static
// BuildGuard deadline aborts, falls back, and the run recovers.
func TestHarnessStaticDeadlineFallback(t *testing.T) {
	in := faultinject.Activate(faultinject.Fault{
		Site: faultinject.SiteBuildNode, Index: -1, Kind: faultinject.KindDelay,
		Delay: 300 * time.Millisecond, Count: 1,
	})
	defer in.Deactivate()
	res := harness.Run(harness.RunConfig{
		Scene: gridScene(), Algorithm: kdtree.AlgoNodeLevel,
		Search: harness.SearchFixed, Workers: 4,
		Width: 32, Height: 24, MaxIterations: 3,
		// Far above any healthy build of the 288-triangle grid — even with
		// race instrumentation — and far below the injected stall, so only
		// the faulted frame can abort.
		BuildGuard: kdtree.Guard{Deadline: 75 * time.Millisecond},
	})
	if res.AbortedBuilds != 1 || res.FallbackFrames != 1 {
		t.Fatalf("AbortedBuilds=%d FallbackFrames=%d, want 1/1", res.AbortedBuilds, res.FallbackFrames)
	}
	if !res.Frames[0].Aborted || res.Frames[1].Aborted || res.Frames[2].Aborted {
		t.Fatalf("abort flags wrong: %+v", res.Frames)
	}
}

// TestHarnessWatchdogDeadline drives the incumbent-derived watchdog: frame 0
// (no incumbent) absorbs a 100ms stall and sets the incumbent; with
// DeadlineFactor 0.25 every later build gets a deadline far below the stall,
// so frames 1+ abort via the watchdog and render from the fallback.
func TestHarnessWatchdogDeadline(t *testing.T) {
	in := faultinject.Activate(faultinject.Fault{
		// Index 0 pins the stall to the first node visit of every build
		// (ordinals reset per build), including the unguarded fallbacks.
		Site: faultinject.SiteBuildNode, Index: 0, Kind: faultinject.KindDelay,
		Delay: 100 * time.Millisecond,
	})
	defer in.Deactivate()
	res := harness.Run(harness.RunConfig{
		Scene: gridScene(), Algorithm: kdtree.AlgoNodeLevel,
		Search: harness.SearchFixed, Workers: 4,
		Width: 32, Height: 24, MaxIterations: 3,
		DeadlineFactor: 0.25,
	})
	if res.Frames[0].Aborted {
		t.Fatalf("frame 0 aborted; the watchdog must stay off until an incumbent exists")
	}
	if res.AbortedBuilds != 2 || res.FallbackFrames != 2 {
		t.Fatalf("AbortedBuilds=%d FallbackFrames=%d, want 2/2", res.AbortedBuilds, res.FallbackFrames)
	}
	if !res.Frames[1].Aborted || !res.Frames[2].Aborted {
		t.Fatalf("watchdog did not abort the stalled frames: %+v", res.Frames)
	}
}

// TestHarnessExtremeGrainVectorAbortRecover is the PR 8 guard-interaction
// drill: the run starts from a deliberately extreme scheduling vector (max
// scatter grain, min bin grain, full split bias) while a Count-budgeted
// stall at the parallel-chunk probe trips the static deadline. The guarded
// pipeline must turn the stall into one censored, fallback-rendered frame,
// the tuner must keep cycling (abort → penalty sample → next probe), and
// once the fault budget is spent every remaining frame must build and
// render normally under the tuned vector.
func TestHarnessExtremeGrainVectorAbortRecover(t *testing.T) {
	in := faultinject.Activate(faultinject.Fault{
		Site: faultinject.SiteParallelChunk, Index: -1, Kind: faultinject.KindDelay,
		Delay: 300 * time.Millisecond, Count: 1,
	})
	defer in.Deactivate()

	base := kdtree.BaseConfig(kdtree.AlgoInPlace)
	base.ScatterGrain = 65536 // one chunk per node: maximally serial
	base.BinGrain = 512       // maximally eager binned fan-out
	base.SplitBias = 3        // full budget pushed into within-node width
	res := harness.Run(harness.RunConfig{
		Scene: gridScene(), Algorithm: kdtree.AlgoInPlace, Base: base,
		Search: harness.SearchNelderMead, Workers: 4,
		Width: 32, Height: 24, MaxIterations: 6, Seed: 9,
		// Same margins as TestHarnessStaticDeadlineFallback: healthy builds
		// (race-instrumented included) finish well under the deadline, the
		// injected stall lands well over it.
		BuildGuard: kdtree.Guard{Deadline: 75 * time.Millisecond},
	})
	if res.AbortedBuilds != 1 || res.FallbackFrames != 1 {
		t.Fatalf("AbortedBuilds=%d FallbackFrames=%d, want 1/1", res.AbortedBuilds, res.FallbackFrames)
	}
	if len(res.Frames) != 6 {
		t.Fatalf("run recorded %d frames, want 6 — the abort must not shorten the run", len(res.Frames))
	}
	for i, f := range res.Frames {
		if want := i == 0; f.Aborted != want {
			t.Errorf("frame %d Aborted=%v, want %v", i, f.Aborted, want)
		}
		if f.Total <= 0 {
			t.Errorf("frame %d not rendered: %+v", i, f)
		}
		if len(f.Params) != len(res.ParamNames) {
			t.Errorf("frame %d records %d params, want the full vector of %d", i, len(f.Params), len(res.ParamNames))
		}
	}
	if len(res.TunedParams) != len(res.ParamNames) {
		t.Fatalf("recovered run reports %d tuned params, want %d: %v",
			len(res.TunedParams), len(res.ParamNames), res.TunedParams)
	}
	if res.BestTotal <= 0 {
		t.Fatalf("recovered run has no steady-state frame time: %+v", res.BestTotal)
	}
}
