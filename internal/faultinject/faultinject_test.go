package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// checkPanics runs Check(site, idx) and returns the *Injected it panicked
// with, or nil if it returned normally.
func checkPanics(site Site, idx int) (inj *Injected) {
	defer func() {
		if r := recover(); r != nil {
			inj = r.(*Injected)
		}
	}()
	Check(site, idx)
	return nil
}

func TestInactiveProbesAreNoops(t *testing.T) {
	if Active() {
		t.Fatalf("plan active at test start")
	}
	if inj := checkPanics(SiteBuildNode, 0); inj != nil {
		t.Fatalf("inactive Check panicked: %v", inj)
	}
	if got := ExtraBytes(SiteArena); got != 0 {
		t.Fatalf("inactive ExtraBytes = %d", got)
	}
}

func TestMatchIndexAndWildcard(t *testing.T) {
	in := Activate(
		Fault{Site: SiteBuildNode, Index: 7, Kind: KindPanic},
		Fault{Site: SiteBuildLeaf, Index: -1, Kind: KindPanic},
	)
	defer in.Deactivate()

	if inj := checkPanics(SiteBuildNode, 6); inj != nil {
		t.Errorf("index 6 matched a fault pinned to 7")
	}
	if inj := checkPanics(SiteBuildLeaf, 123); inj == nil {
		t.Errorf("wildcard index did not match")
	}
	inj := checkPanics(SiteBuildNode, 7)
	if inj == nil {
		t.Fatalf("pinned index did not match")
	}
	if inj.Fault.Site != SiteBuildNode || inj.Fault.Index != 7 {
		t.Errorf("Injected carries %+v", inj.Fault)
	}
	var err error = inj
	var got *Injected
	if !errors.As(err, &got) || got != inj {
		t.Errorf("*Injected is not recoverable via errors.As")
	}
	if !strings.Contains(inj.Error(), "build-node") {
		t.Errorf("Error() = %q, want the site name", inj.Error())
	}
}

func TestCountBudget(t *testing.T) {
	in := Activate(Fault{Site: SiteBuildNode, Index: -1, Kind: KindPanic, Count: 2})
	defer in.Deactivate()

	for i := 0; i < 2; i++ {
		if checkPanics(SiteBuildNode, i) == nil {
			t.Fatalf("trigger %d did not fire", i)
		}
	}
	if checkPanics(SiteBuildNode, 99) != nil {
		t.Fatalf("fault fired past its Count budget")
	}
	// Hits counts matches, including ones past the budget.
	if got := in.Hits(0); got != 3 {
		t.Errorf("Hits = %d, want 3 matches", got)
	}
	if got := in.TotalHits(); got != 3 {
		t.Errorf("TotalHits = %d", got)
	}
}

func TestCountZeroIsUnlimited(t *testing.T) {
	in := Activate(Fault{Site: SitePoolTask, Index: -1, Kind: KindPanic})
	defer in.Deactivate()
	for i := 0; i < 10; i++ {
		if checkPanics(SitePoolTask, i) == nil {
			t.Fatalf("unlimited fault stopped firing at trigger %d", i)
		}
	}
}

func TestDeactivateIsCASGuarded(t *testing.T) {
	a := Activate(Fault{Site: SiteBuildNode, Index: -1, Kind: KindPanic})
	b := Activate(Fault{Site: SiteBuildLeaf, Index: -1, Kind: KindPanic})
	// a is no longer the active plan; its Deactivate must not tear down b.
	a.Deactivate()
	if !Active() {
		t.Fatalf("stale Deactivate removed the newer plan")
	}
	if checkPanics(SiteBuildLeaf, 0) == nil {
		t.Fatalf("newer plan not in effect")
	}
	b.Deactivate()
	if Active() {
		t.Fatalf("Deactivate left the plan active")
	}
}

func TestDelayFault(t *testing.T) {
	const d = 20 * time.Millisecond
	in := Activate(Fault{Site: SiteParallelChunk, Index: 0, Kind: KindDelay, Delay: d, Count: 1})
	defer in.Deactivate()
	t0 := time.Now()
	Check(SiteParallelChunk, 0)
	if got := time.Since(t0); got < d {
		t.Errorf("delayed probe returned after %v, want >= %v", got, d)
	}
	t0 = time.Now()
	Check(SiteParallelChunk, 0) // budget spent
	if got := time.Since(t0); got > d/2 {
		t.Errorf("spent delay fault still stalls (%v)", got)
	}
}

func TestInflate(t *testing.T) {
	in := Activate(
		Fault{Site: SiteArena, Index: -1, Kind: KindInflate, Bytes: 1 << 20},
		Fault{Site: SiteArena, Index: -1, Kind: KindInflate, Bytes: 1 << 10, Count: 1},
	)
	defer in.Deactivate()
	if got := ExtraBytes(SiteArena); got != 1<<20+1<<10 {
		t.Errorf("first ExtraBytes = %d", got)
	}
	if got := ExtraBytes(SiteArena); got != 1<<20 {
		t.Errorf("second ExtraBytes = %d, want the Count-limited fault gone", got)
	}
	if got := ExtraBytes(SiteBuildNode); got != 0 {
		t.Errorf("wrong-site ExtraBytes = %d", got)
	}
	// Inflate faults are invisible to Check.
	if checkPanics(SiteArena, 0) != nil {
		t.Errorf("KindInflate fired from Check")
	}
}

func TestSiteAndKindStrings(t *testing.T) {
	for s := SiteParallelChunk; s < numSites; s++ {
		if s.String() == "" || strings.HasPrefix(s.String(), "site(") {
			t.Errorf("Site(%d) missing a name: %q", s, s.String())
		}
	}
	if got := Site(250).String(); got != "site(250)" {
		t.Errorf("unknown site String = %q", got)
	}
	if (&Injected{}).Error() == "" {
		t.Errorf("empty Injected error")
	}
}

func TestNilInjectorHits(t *testing.T) {
	var in *Injector
	if in.Hits(0) != 0 {
		t.Errorf("nil Injector Hits != 0")
	}
	in = Activate(Fault{Site: SiteBuildNode, Index: -1, Kind: KindPanic})
	defer in.Deactivate()
	if in.Hits(-1) != 0 || in.Hits(5) != 0 {
		t.Errorf("out-of-range Hits != 0")
	}
}
