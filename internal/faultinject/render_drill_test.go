package faultinject_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"kdtune/internal/faultinject"
	"kdtune/internal/kdtree"
	"kdtune/internal/parallel"
	"kdtune/internal/render"
	"kdtune/internal/scene"
	"kdtune/internal/vecmath"
)

// renderDrillScene builds a small static scene plus its tree for the
// render-path drills.
func renderDrillScene(t *testing.T) (*scene.Scene, *kdtree.Tree) {
	t.Helper()
	tris := e2eTriangles(3000)
	sc := scene.NewStatic("drill", tris,
		scene.View{Eye: vecmath.V(5, 5, 30), LookAt: vecmath.V(5, 5, 5), Up: vecmath.V(0, 1, 0), FOV: 45},
		[]vecmath.Vec3{vecmath.V(20, 30, 25)})
	cfg := e2eConfig(kdtree.AlgoInPlace)
	tree, err := kdtree.NewBuilder().BuildGuarded(tris, cfg, kdtree.Guard{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return sc, tree
}

// TestRenderTilePanicContained injects a panic into a render worker's tile
// loop and asserts it surfaces on the calling goroutine as a typed
// *parallel.WorkerPanic carrying the injected sentinel — the contract the
// server's recover middleware converts into a 500 instead of a dead process.
func TestRenderTilePanicContained(t *testing.T) {
	sc, tree := renderDrillScene(t)
	for _, packet := range []int{1, 8} {
		in := faultinject.Activate(faultinject.Fault{
			Site: faultinject.SiteRenderTile, Index: -1, Kind: faultinject.KindPanic, Count: 1,
		})
		im := render.NewImage(64, 48)
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					wp, ok := r.(*parallel.WorkerPanic)
					if !ok {
						t.Fatalf("packet=%d: recovered %T, want *parallel.WorkerPanic", packet, r)
					}
					err = wp
				}
			}()
			render.RenderInto(im, tree, sc.View, sc.Lights, render.Options{
				Width: 64, Height: 48, Workers: 4, PacketWidth: packet,
			})
			return nil
		}()
		in.Deactivate()
		if err == nil {
			t.Fatalf("packet=%d: injected render panic did not surface", packet)
		}
		var inj *faultinject.Injected
		if !errors.As(err, &inj) {
			t.Fatalf("packet=%d: panic %v does not unwrap to *Injected", packet, err)
		}
	}
}

// TestRenderDelayCanceledByContext stalls every tile/row and asserts a
// deadline context linked to Options.Cancel drains the render early with
// Canceled set — the end-to-end deadline path of the serve layer.
func TestRenderDelayCanceledByContext(t *testing.T) {
	sc, tree := renderDrillScene(t)
	for _, packet := range []int{1, 8} {
		in := faultinject.Activate(faultinject.Fault{
			Site: faultinject.SiteRenderTile, Index: -1, Kind: faultinject.KindDelay, Delay: 10 * time.Millisecond,
		})
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		var cc parallel.Canceler
		stop := parallel.LinkContext(ctx, &cc)
		im := render.NewImage(96, 72)
		st := render.RenderInto(im, tree, sc.View, sc.Lights, render.Options{
			Width: 96, Height: 72, Workers: 2, PacketWidth: packet, Cancel: &cc,
		})
		stop()
		cancel()
		in.Deactivate()
		if !st.Canceled {
			t.Fatalf("packet=%d: delayed render was not canceled by the linked context", packet)
		}
		if !cc.Canceled() || !errors.Is(cc.Err(), context.DeadlineExceeded) {
			t.Fatalf("packet=%d: canceler state %v/%v, want deadline-exceeded", packet, cc.Canceled(), cc.Err())
		}
	}
}

// TestPacketDemoteSite drives a deliberately divergent packet (opposing
// direction signs demote at the first split) through both traversal kernels
// and asserts the demotion probe fires, both as a delay and as a contained
// panic.
func TestPacketDemoteSite(t *testing.T) {
	tris := e2eTriangles(2000)
	cfg := e2eConfig(kdtree.AlgoInPlace)
	tree, err := kdtree.NewBuilder().BuildGuarded(tris, cfg, kdtree.Guard{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// Two rays crossing the scene in opposite x-directions: no shared
	// near/far order exists at any x-split, so the packet demotes.
	rays := []vecmath.Ray{
		vecmath.Towards(vecmath.V(-5, 5, 5), vecmath.V(15, 5, 5)),
		vecmath.Towards(vecmath.V(15, 5.1, 5.1), vecmath.V(-5, 5.1, 5.1)),
	}
	var ps kdtree.PacketScratch

	in := faultinject.Activate(faultinject.Fault{
		Site: faultinject.SitePacketDemote, Index: -1, Kind: faultinject.KindDelay, Delay: time.Microsecond,
	})
	demoted := tree.IntersectPacket(&ps, rays, 1e-9, math.Inf(1))
	occDemoted := tree.OccludedPacket(&ps, rays, 1e-9, math.Inf(1))
	hits := in.TotalHits()
	in.Deactivate()
	if demoted == 0 && occDemoted == 0 {
		t.Fatal("divergent packet did not demote; drill rays need adjusting")
	}
	if hits == 0 {
		t.Fatal("demotion probe never fired despite demotions")
	}

	in = faultinject.Activate(faultinject.Fault{
		Site: faultinject.SitePacketDemote, Index: -1, Kind: faultinject.KindPanic, Count: 1,
	})
	err = func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = parallel.AsWorkerPanic(-1, r)
			}
		}()
		tree.IntersectPacket(&ps, rays, 1e-9, math.Inf(1))
		return nil
	}()
	in.Deactivate()
	var inj *faultinject.Injected
	if err == nil || !errors.As(err, &inj) {
		t.Fatalf("demote panic: got %v, want *Injected", err)
	}
}

// TestFaultEveryPeriodicMatch pins the Every-period matching added for the
// soak drills: a fault with Every=3, Index=1 fires exactly on probe indices
// congruent to 1 mod 3, and Count still bounds the total.
func TestFaultEveryPeriodicMatch(t *testing.T) {
	in := faultinject.Activate(faultinject.Fault{
		Site: faultinject.SiteServeHandler, Index: 1, Every: 3, Kind: faultinject.KindDelay, Delay: 0,
	})
	defer in.Deactivate()
	for idx := 0; idx < 9; idx++ {
		faultinject.Check(faultinject.SiteServeHandler, idx)
	}
	// Indices 1, 4, 7 → 3 hits. (Non-matching probes do not consume hits.)
	if got := in.TotalHits(); got != 3 {
		t.Fatalf("periodic fault hits = %d, want 3", got)
	}
}
